// Journal wire format: versioned, length-prefixed, CRC-framed records.
//
// The durability subsystem (src/journal/) persists every external event of
// a run — device check-ins/check-outs, job submissions, open-loop
// admissions, protocol commits/aborts, straggler releases — as an
// append-only sequence of framed binary records:
//
//   file   := magic(8) version(u32) header_len(u32) header_crc(u32)
//             header_payload record*
//   record := payload_len(u32) payload_crc(u32) body
//   body   := type(u16) fields...
//
// payload_len counts the body bytes; payload_crc is CRC-32 (IEEE
// polynomial, implemented here — no external dependency) over the body.
// All integers are little-endian; doubles travel as their raw IEEE-754
// bit patterns (byte-identity is the whole point — a decimal round-trip
// would be a different number). The header carries the scenario seed, the
// canonical `key=value` serialization of the ScenarioSpec/PolicySpec that
// produced the run, and a fingerprint of the generated inputs, so a
// journal is self-describing: `Experiment::replay` rebuilds the experiment
// from the header alone and verifies it regenerated the same world.
//
// Corruption is loud by design: a bad magic, unsupported version, CRC
// mismatch or mid-record truncation surfaces as std::runtime_error naming
// the byte offset (tests/journal_test.cc pins the failure modes), and the
// reader's tolerate-torn-tail mode recovers every record before the tear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace venn::journal {

inline constexpr char kMagic[8] = {'V', 'E', 'N', 'N', 'J', 'N', 'L', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;

// Snapshot files share the framing discipline under their own magic.
inline constexpr char kSnapshotMagic[8] = {'V', 'E', 'N', 'N',
                                           'S', 'N', 'P', '1'};

// Event record types. Values are part of the on-disk format: append only,
// never renumber.
enum class RecordType : std::uint16_t {
  kCheckin = 1,           // device session check-in reached the manager
  kCheckout = 2,          // device left the idle pool at session end
  kSubmit = 3,            // a round request opened (ResourceManager)
  kAdmission = 4,         // open-loop job admission (full sampled spec)
  kAssignment = 5,        // device assigned to a job's round request
  kResponse = 6,          // response counted toward an open round
  kCommit = 7,            // round committed            (flush boundary)
  kAbort = 8,             // round aborted at deadline  (flush boundary)
  kStragglerRelease = 9,  // device cut off mid-compute and released
  kJobFinish = 10,        // job completed its last round
  kSnapshotMark = 11,     // a state snapshot was captured here
  kRunEnd = 12,           // clean end-of-run footer
  kExternal = 13,         // live service command (daemon ingest, PR 7)
};

[[nodiscard]] std::string_view record_type_name(RecordType t);

// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len);

// FNV-1a 64-bit — the running hash behind the inputs fingerprint.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
[[nodiscard]] inline std::uint64_t fnv1a64(std::uint64_t h, const void* data,
                                           std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// Little-endian append-only byte builder for record payloads.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // raw IEEE-754 bits
  void str(std::string_view s);  // u32 length prefix + bytes

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }
  // Reuse without releasing capacity — the per-event encoding path clears
  // and repacks one buffer instead of heap-allocating per event.
  void clear() { buf_.clear(); }

  // In-place record framing for the per-event hot path: frame_begin lays
  // down the 10-byte frame prelude (length + CRC placeholders + type),
  // fields are encoded directly after it, and frame_finish patches the
  // length in place — the buffer then IS the on-disk frame except for the
  // CRC, which stays zero until patch_frame_crcs runs over the flush
  // buffer (see frame_finish for why). Must be paired; the buffer must be
  // clear()ed before frame_begin.
  void frame_begin(RecordType type);
  [[nodiscard]] std::string_view frame_finish();

 private:
  std::string buf_;
};

// Byte offset of the record body (type + fields) within a framed record:
// payload_len(u32) + payload_crc(u32).
inline constexpr std::size_t kFrameBodyOffset = 8;
// Byte offset of the payload (fields after the u16 type).
inline constexpr std::size_t kFramePayloadOffset = 10;

// Bounds-checked little-endian reader over a byte span. Underflow throws
// std::runtime_error naming the absolute file offset (`base_offset` + the
// local cursor), so corruption reports point at the byte that failed.
class Decoder {
 public:
  Decoder(std::string_view bytes, std::size_t base_offset)
      : bytes_(bytes), base_(base_offset) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] std::size_t offset() const { return base_ + pos_; }

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t base_;
  std::size_t pos_ = 0;
};

// Frames one record body (type + payload) with its length/CRC prefix.
[[nodiscard]] std::string frame_record(RecordType type,
                                       std::string_view payload);

// Computes and patches the CRC of every complete frame in a buffer of
// concatenated frames (idempotent; a trailing partial frame is left
// untouched). The writer's flush runs this once over its whole buffer —
// batching the CRCs away from the stores that produced the bytes.
void patch_frame_crcs(char* data, std::size_t size);

// Journal header: everything replay needs to rebuild the experiment.
struct JournalHeader {
  std::uint64_t seed = 0;
  // Canonical `key=value\n` serializations (ScenarioSpec::to_kv /
  // PolicySpec::to_kv). Parsed back through the normal try_set surface.
  std::string scenario_kv;
  std::string policy_kv;
  std::string label;  // scheduler label of the journaled run
  // FNV-1a fingerprint of the generated inputs (devices, sessions, jobs).
  // Catches scenario state that is NOT expressible as key=value overrides
  // (programmatic availability/hardware configs, use_devices/use_jobs):
  // replay refuses to verify against a world it could not regenerate.
  std::uint64_t inputs_digest = 0;
};

// Serialized file prologue: magic + version + framed header.
[[nodiscard]] std::string encode_header(const JournalHeader& h);

// Parses the prologue; returns the header and sets `payload_end` to the
// offset of the first record. Throws std::runtime_error (offset-naming) on
// bad magic, unsupported version, short file, or header CRC mismatch.
[[nodiscard]] JournalHeader decode_header(std::string_view file,
                                          std::size_t* payload_end);

}  // namespace venn::journal
