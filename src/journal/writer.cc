#include "journal/writer.h"

namespace venn::journal {

JournalWriter::JournalWriter(std::string path, const JournalHeader& header)
    : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot open \"" + path_ +
                             "\" for writing");
  }
  const std::string prologue = encode_header(header);
  if (std::fwrite(prologue.data(), 1, prologue.size(), file_) !=
          prologue.size() ||
      std::fflush(file_) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("journal: short header write to \"" + path_ +
                             "\"");
  }
}

JournalWriter::JournalWriter(std::string path, AppendExisting resume_at)
    : path_(std::move(path)),
      records_(resume_at.records),
      commits_(resume_at.commits),
      snapshots_(resume_at.snapshots) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot open \"" + path_ +
                             "\" for appending");
  }
}

JournalWriter::~JournalWriter() {
  // Unflushed records are discarded on purpose: the durability contract is
  // "everything up to the last round boundary", and the destructor runs on
  // the crash paths (SimulationHalted unwinding) that model exactly that.
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::append(RecordType type, std::string_view payload) {
  append_frame(frame_record(type, payload));
}

void JournalWriter::append_frame(std::string_view frame) {
  // The hot path of every journaled event: the EventEncoderSink already
  // assembled the complete frame (length, CRC, type, payload), so this is
  // one buffer append — allocation-free in steady state (see the
  // journaling-overhead bench gate).
  buffer_.append(frame.data(), frame.size());
  ++records_;
}

void JournalWriter::flush() {
  if (buffer_.empty() || file_ == nullptr) return;
  // Hot-path frames arrive with a zero CRC placeholder (see
  // Encoder::frame_finish); fill every CRC in one batched pass before the
  // bytes hit disk.
  patch_frame_crcs(buffer_.data(), buffer_.size());
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
          buffer_.size() ||
      std::fflush(file_) != 0) {
    throw std::runtime_error("journal: short write to \"" + path_ + "\"");
  }
  buffer_.clear();
}

void JournalWriter::handle(RecordType type, std::string_view frame) {
  append_frame(frame);
  after_append(type);
}

void JournalWriter::after_append(RecordType type) {
  if (type == RecordType::kCommit || type == RecordType::kAbort) {
    flush();  // round boundary
    if (type == RecordType::kCommit) {
      ++commits_;
      if (halt_after_commits_ != 0 && commits_ >= halt_after_commits_) {
        throw SimulationHalted(commits_);
      }
    }
  }
}

void JournalWriter::on_snapshot(const StateSnapshot& snapshot) {
  write_snapshot_file(snapshot_path(path_, snapshot.commits), snapshot);
  append(RecordType::kSnapshotMark, encode_snapshot_mark(snapshot));
  flush();
  ++snapshots_;
}

void JournalWriter::append_external(double time, std::uint64_t seq,
                                    std::string_view command) {
  append(RecordType::kExternal, encode_external(time, seq, command));
  flush();  // ack-after-durable
}

void JournalWriter::finalize(double clock) {
  if (finalized_) return;
  append(RecordType::kRunEnd, encode_run_end(clock, records_));
  flush();
  finalized_ = true;
}

}  // namespace venn::journal
