// State snapshots: the durability anchor of journaled runs.
//
// Every `snapshot_every` round commits the coordinator captures its full
// mutable state — engine clock and RNG, idle-pool vector and per-shard
// segment sizes, per-device participation budgets, per-job round/request
// state, protocol and hot-path counters, open-loop and streaming-churn
// progress — into a StateSnapshot of named binary sections, written next
// to the journal and marked in it with a kSnapshotMark record.
//
// Capture serializes *logical* state, not memory layout: the per-device
// participation budgets, for instance, are read out of the fleet's
// struct-of-arrays hot-state column (device/fleet_partition.h) in device
// order — byte-identical to the days the former per-Device walk produced,
// since bound Devices are views over that same column.
//
// Restore is event-sourced: the simulation's event queue holds closures
// and cannot be serialized, so a restored coordinator is produced by
// deterministically re-executing the journal prefix (the same engine, the
// same seeds, the same event order). The snapshot is the *correctness
// anchor* of that recovery, not a shortcut past it: at the marked commit
// the re-executed coordinator captures its state again and compares it to
// the stored snapshot field for field — any drift between the journaled
// run and the recovery fails loudly with the first diverging section named
// (tests/replay_differential_test.cc pins this end to end, including
// crash-recovery tails).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace venn::journal {

struct StateSnapshot {
  std::uint64_t commits = 0;  // protocol commits at capture time
  double clock = 0.0;         // engine now() at capture time
  // Named binary sections (Encoder-packed). Names give mismatch reports a
  // subsystem to point at ("idle-pool", "engine-rng", "jobs", ...).
  std::vector<std::pair<std::string, std::string>> sections;

  [[nodiscard]] const std::string* find(const std::string& name) const;
};

// Framed serialization: snapshot magic, format version, commits/clock,
// sections, trailing CRC over everything after the magic.
[[nodiscard]] std::string encode_snapshot(const StateSnapshot& s);
[[nodiscard]] StateSnapshot decode_snapshot(std::string_view bytes);

// File round-trip. Throws std::runtime_error on I/O errors and on any
// framing/CRC violation (offset-naming, like the journal reader).
void write_snapshot_file(const std::string& path, const StateSnapshot& s);
[[nodiscard]] StateSnapshot read_snapshot_file(const std::string& path);

// Canonical sibling path of the snapshot captured at `commits` for the
// journal at `journal_path` (journal.vjl -> journal.vjl.snap-000123).
[[nodiscard]] std::string snapshot_path(const std::string& journal_path,
                                        std::uint64_t commits);

// First divergence between two snapshots, or nullopt when identical.
// Section-wise: names the section and the byte where the payloads differ.
[[nodiscard]] std::optional<std::string> describe_mismatch(
    const StateSnapshot& expected, const StateSnapshot& actual);

}  // namespace venn::journal
