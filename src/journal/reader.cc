#include "journal/reader.h"

#include <cstdio>
#include <stdexcept>

namespace venn::journal {

JournalReader::JournalReader(const std::string& path, bool tolerate_torn_tail)
    : tolerate_torn_tail_(tolerate_torn_tail) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("journal: cannot open \"" + path + "\"");
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes_.append(buf, n);
  }
  std::fclose(f);
  // The prologue is never tolerated torn: without a valid header there is
  // nothing to replay, so corruption there always throws.
  header_ = decode_header(bytes_, &pos_);
}

std::optional<Record> JournalReader::parse_at(std::size_t* pos,
                                              std::uint64_t index, bool* torn,
                                              std::size_t* torn_at) const {
  if (*pos >= bytes_.size()) return std::nullopt;  // clean end
  const std::size_t frame_start = *pos;
  const auto fail = [&](const std::string& what,
                        std::size_t off) -> std::optional<Record> {
    if (tolerate_torn_tail_) {
      *torn = true;
      *torn_at = frame_start;
      return std::nullopt;
    }
    throw std::runtime_error("journal: " + what + " at offset " +
                             std::to_string(off) + " (record " +
                             std::to_string(index) + ")");
  };

  if (bytes_.size() - frame_start < 8) {
    return fail("torn record frame (truncated length/CRC prefix)",
                frame_start);
  }
  Decoder pre(std::string_view(bytes_).substr(frame_start, 8), frame_start);
  const std::uint32_t len = pre.u32();
  const std::uint32_t crc = pre.u32();
  const std::size_t body_start = frame_start + 8;
  if (bytes_.size() - body_start < len) {
    return fail("mid-record truncation (body needs " + std::to_string(len) +
                    " bytes, " + std::to_string(bytes_.size() - body_start) +
                    " left)",
                frame_start);
  }
  if (len < 2) return fail("record body too short", frame_start);
  const std::string_view body = std::string_view(bytes_).substr(body_start,
                                                                len);
  if (crc32(body.data(), body.size()) != crc) {
    return fail("record CRC mismatch", frame_start);
  }
  Decoder d(body, body_start);
  const std::uint16_t raw_type = d.u16();
  if (raw_type < static_cast<std::uint16_t>(RecordType::kCheckin) ||
      raw_type > static_cast<std::uint16_t>(RecordType::kExternal)) {
    return fail("unknown record type " + std::to_string(raw_type),
                frame_start);
  }
  Record r;
  r.type = static_cast<RecordType>(raw_type);
  r.payload = std::string(body.substr(2));
  r.offset = frame_start;
  r.index = index;
  *pos = body_start + len;
  return r;
}

std::optional<Record> JournalReader::next() {
  if (torn_) return std::nullopt;
  auto r = parse_at(&pos_, index_, &torn_, &torn_offset_);
  if (r) ++index_;
  return r;
}

ExternalEvent decode_external(const Record& r) {
  if (r.type != RecordType::kExternal) {
    throw std::runtime_error("journal: record " + std::to_string(r.index) +
                             " is not an external record");
  }
  Decoder d(r.payload, r.offset + kFramePayloadOffset);
  ExternalEvent e;
  e.index = r.index;
  e.time = d.f64();
  e.seq = d.u64();
  e.command = d.str();
  return e;
}

JournalScan JournalReader::scan() const {
  JournalScan s;
  std::size_t pos = 0;
  (void)decode_header(bytes_, &pos);
  s.prefix_end = pos;
  std::uint64_t index = 0;
  bool torn = false;
  std::size_t torn_at = 0;
  while (true) {
    const auto r = parse_at(&pos, index, &torn, &torn_at);
    if (!r) break;
    ++index;
    ++s.records;
    s.prefix_end = pos;
    switch (r->type) {
      case RecordType::kCommit:
        ++s.commits;
        break;
      case RecordType::kRunEnd:
        s.has_run_end = true;
        break;
      case RecordType::kSnapshotMark: {
        Decoder d(r->payload, r->offset + kFramePayloadOffset);
        s.last_snapshot_commits = d.u64();
        ++s.snapshots;
        break;
      }
      case RecordType::kExternal: {
        auto e = decode_external(*r);
        s.last_external_seq = e.seq;
        s.externals.push_back(std::move(e));
        break;
      }
      default:
        break;
    }
  }
  s.torn = torn;
  s.torn_offset = torn_at;
  return s;
}

std::optional<std::uint64_t> JournalReader::last_snapshot_commits() const {
  std::size_t pos = 0;
  (void)decode_header(bytes_, &pos);
  std::uint64_t index = 0;
  bool torn = false;
  std::size_t torn_at = 0;
  std::optional<std::uint64_t> last;
  while (true) {
    const auto r = parse_at(&pos, index, &torn, &torn_at);
    if (!r) break;
    ++index;
    if (r->type == RecordType::kSnapshotMark) {
      Decoder d(r->payload, r->offset + 10);
      last = d.u64();
    }
  }
  return last;
}

}  // namespace venn::journal
