// JournalVerifier: byte-exact replay verification sink.
//
// Replay in this codebase is deterministic re-execution: the replay driver
// rebuilds the experiment from the journal header and runs it again with
// this sink installed. Each event the re-executed coordinator emits is
// encoded through the same EventEncoderSink layouts the writer used and
// compared byte for byte against the next journal record — the journal is
// a full transcript wall around the re-executed run, so "the replay
// matched" means every check-in, assignment, response, commit, abort,
// straggler release and finish happened at the same time, in the same
// order, with the same payload. Any divergence throws with the record
// ordinal, file offset and both record types named.
//
// Modes:
//   kStrict — the journal must be a complete clean run: after the run the
//     next record must be the kRunEnd footer, with nothing after it.
//   kResume — the journal may end early (a crashed run, or a tolerated
//     torn tail): when records run out mid-run the verifier flips to
//     passthrough and the re-execution simply CONTINUES the run live past
//     the journal's end. Verified prefix + live tail = crash recovery.
//
// Snapshot anchoring: on_snapshot receives the state the re-executed
// coordinator captured at a snapshot cadence point. The verifier checks
// the journal's kSnapshotMark and, when given a stored snapshot to verify
// against, compares the two states section by section — the zero-drift
// guarantee that a restored coordinator stands exactly where the original
// did.
#pragma once

#include <cstdint>
#include <string>

#include "journal/reader.h"
#include "journal/sink.h"

namespace venn::journal {

// Thrown by the verifier when a seek target set via set_seek_commits is
// reached: the Nth kCommit record just matched, which is the exact program
// point where the coordinator captures its cadence snapshots — so a driver
// that catches this and calls Coordinator::capture_snapshot() reads the
// same state the stored snapshot at commit N recorded (the time-travel
// inspector, src/service/inspect.cc). Deliberately not a std::exception:
// nothing but the seek driver should ever catch it.
struct SeekReached {
  std::uint64_t commits = 0;
};

class JournalVerifier final : public EventEncoderSink {
 public:
  enum class Mode {
    kStrict,  // journal must cover the whole run and end with kRunEnd
    kResume,  // journal may end early; continue live past its end
  };

  // `expect_snapshot` (optional, caller-owned, must outlive the verifier):
  // the stored snapshot to compare against when re-execution reaches its
  // commit count.
  JournalVerifier(JournalReader& reader, Mode mode,
                  const StateSnapshot* expect_snapshot = nullptr)
      : reader_(reader), mode_(mode), expect_snapshot_(expect_snapshot) {}

  void on_snapshot(const StateSnapshot& snapshot) override;
  void on_run_end(SimTime now) override {
    (void)now;
    finish();
  }

  // Post-run check. Strict mode: consumes the kRunEnd footer and requires
  // exhaustion; throws otherwise. Resume mode: no-op.
  void finish();

  // True once the journal ran out in resume mode (the live tail began).
  [[nodiscard]] bool passthrough() const { return passthrough_; }
  // Events matched against journal records (excludes the live tail).
  [[nodiscard]] std::uint64_t events_verified() const { return verified_; }
  // True once the stored snapshot was reached and compared clean.
  [[nodiscard]] bool snapshot_verified() const { return snapshot_verified_; }

  // Consumes the next journal record, which must be the given kExternal
  // record (the replay driver pre-scans externals and interleaves them with
  // re-execution; see Experiment::replay). Counts toward events_verified.
  void take_external(const ExternalEvent& expected);

  // Arms time-travel seek: after the Nth kCommit record matches, throw
  // SeekReached instead of continuing. 0 (default) disarms.
  void set_seek_commits(std::uint64_t n) { seek_commits_ = n; }
  [[nodiscard]] std::uint64_t commits_matched() const {
    return commits_matched_;
  }

 protected:
  void handle(RecordType type, std::string_view frame) override;

 private:
  // Fetches the next record, or flips to passthrough / throws per mode.
  [[nodiscard]] bool expect(RecordType type, std::string_view payload);

  JournalReader& reader_;
  Mode mode_;
  const StateSnapshot* expect_snapshot_;
  bool passthrough_ = false;
  bool snapshot_verified_ = false;
  std::uint64_t verified_ = 0;
  std::uint64_t commits_matched_ = 0;
  std::uint64_t seek_commits_ = 0;
};

}  // namespace venn::journal
