// Device eligibility: job resource requirements and signature algebra.
//
// A CL job targets a subset of devices via a *requirement* (minimum CPU /
// memory scores, paper §2.1 & Fig. 8a). Requirements of different jobs
// induce eligible device sets that may nest, overlap or be disjoint — the
// structure the Intersection Resource Scheduling problem (§4.2) is defined
// over.
//
// To make IRS set algebra exact and cheap, we reduce each device to a
// *signature*: the bitmask of registered requirements it satisfies. Distinct
// signatures partition the device space into "atoms"; every set expression
// in Algorithm 1 (S ∩ S_j, S \ S'_j, S_j ∩ S_k) is a union of atoms and is
// computed over per-atom supply rates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace venn {

// Normalized hardware scores in [0, 1] (AI-Benchmark style, Fig. 2b).
struct DeviceSpec {
  double cpu_score = 0.0;
  double mem_score = 0.0;

  // Scalar capacity used for tier partitioning (Algorithm 2). Weighted
  // toward CPU since on-device training is compute-bound.
  [[nodiscard]] double capacity() const {
    return 0.6 * cpu_score + 0.4 * mem_score;
  }
};

// A job's minimum hardware requirement. The eligible set of a requirement is
// the upper-right rectangle {cpu >= min_cpu, mem >= min_mem}.
struct Requirement {
  double min_cpu = 0.0;
  double min_mem = 0.0;

  [[nodiscard]] bool eligible(const DeviceSpec& d) const {
    return d.cpu_score >= min_cpu && d.mem_score >= min_mem;
  }

  // True iff this requirement's eligible set is a (non-strict) subset of
  // `other`'s: it is *more* demanding on both axes.
  [[nodiscard]] bool subset_of(const Requirement& other) const {
    return min_cpu >= other.min_cpu && min_mem >= other.min_mem;
  }

  // True iff the two eligible rectangles intersect. For upper-right
  // rectangles over the full score square this is always true; provided for
  // generality (and future bounded requirements).
  [[nodiscard]] bool intersects(const Requirement&) const { return true; }

  friend bool operator==(const Requirement&, const Requirement&) = default;
};

// The four resource categories the evaluation stratifies devices into
// (Fig. 8a): General ⊇ {Compute-Rich, Memory-Rich} ⊇ High-Performance.
enum class ResourceCategory : int {
  kGeneral = 0,
  kComputeRich = 1,
  kMemoryRich = 2,
  kHighPerf = 3,
};
inline constexpr int kNumCategories = 4;
inline constexpr double kRichThreshold = 0.5;

[[nodiscard]] Requirement requirement_for(ResourceCategory c);
[[nodiscard]] std::string category_name(ResourceCategory c);
[[nodiscard]] std::vector<ResourceCategory> all_categories();

// The finest Fig. 8a region a device belongs to (High-Perf ⊂ Compute/Memory
// ⊂ General). Used to stratify assignment accounting by device scarcity.
[[nodiscard]] ResourceCategory finest_region(const DeviceSpec& spec);

// Registry of distinct requirements, assigning each a stable bit index.
// Signatures are bitmasks over these indices.
class SignatureSpace {
 public:
  using Signature = std::uint64_t;
  static constexpr std::size_t kMaxRequirements = 64;

  // Registers `req` (idempotent); returns its bit index.
  std::size_t register_requirement(const Requirement& req);

  [[nodiscard]] std::size_t size() const { return reqs_.size(); }
  [[nodiscard]] const Requirement& requirement(std::size_t idx) const {
    return reqs_.at(idx);
  }

  // Bitmask of registered requirements that `spec` satisfies.
  [[nodiscard]] Signature signature_of(const DeviceSpec& spec) const;

  // Bitmask restricted to the given subset of requirement indices.
  [[nodiscard]] static Signature restrict(Signature s, Signature mask) {
    return s & mask;
  }

 private:
  std::vector<Requirement> reqs_;
};

}  // namespace venn
