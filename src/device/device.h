// Device model: hardware spec, availability sessions, execution-time model.
//
// A device is available only during its sessions (charging + WiFi, paper
// §2.1). When assigned a CL task it computes for a log-normally distributed
// duration scaled by its hardware capacity; if its session ends first, the
// task fails (ephemerality). Each device participates in at most one CL job
// per day (paper §5.1: "Each unique device trace is limited to one CL job
// per day for realism").
#pragma once

#include <vector>

#include "device/eligibility.h"
#include "util/ids.h"
#include "util/rng.h"

namespace venn {

// One contiguous availability interval [start, end).
struct Session {
  SimTime start = 0.0;
  SimTime end = 0.0;

  [[nodiscard]] SimTime duration() const { return end - start; }
  [[nodiscard]] bool contains(SimTime t) const { return t >= start && t < end; }
};

class Device {
 public:
  Device(DeviceId id, DeviceSpec spec, std::vector<Session> sessions);

  // Sessionless device for streaming-churn scenarios: availability is
  // pulled lazily from a workload::ChurnStream instead of being stored
  // here, so sessions() stays empty for the device's whole lifetime.
  Device(DeviceId id, DeviceSpec spec) : Device(id, spec, {}) {}

  [[nodiscard]] DeviceId id() const { return id_; }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<Session>& sessions() const {
    return sessions_;
  }
  [[nodiscard]] bool has_sessions() const { return !sessions_.empty(); }

  // Relative execution speed in (0, 1]: a speed-1.0 device finishes a task
  // in its nominal duration; slower devices take proportionally longer.
  // Affine in capacity so even the weakest devices make progress (the
  // long tail of stragglers the matching algorithm of §4.3 targets).
  [[nodiscard]] double speed() const;

  // Samples the wall-clock execution time for a task with nominal duration
  // `nominal` (the duration on a speed-1.0 device), log-normal noise with
  // coefficient of variation `cv` (paper §4.3 cites log-normal response
  // times).
  [[nodiscard]] SimTime sample_exec_time(double nominal, double cv,
                                         Rng& rng) const;

  // --- one-job-per-day bookkeeping -------------------------------------
  [[nodiscard]] bool participated_on_day(int day) const {
    return last_participation_day_ == day;
  }
  // Raw budget state, for coordinator state snapshots (-1 = never/refunded).
  [[nodiscard]] int last_participation_day() const {
    return last_participation_day_;
  }
  void mark_participation(int day) { last_participation_day_ = day; }

  // Straggler release (over-selection protocols): a device cut off
  // mid-computation did not actually spend its participation — refund the
  // budget it was charged on `day` so it is re-offerable under the usual
  // one-job-per-day rules. No-op if the device has since been charged for
  // a different day.
  void refund_participation(int day) {
    if (last_participation_day_ == day) last_participation_day_ = -1;
  }

  // Day index of a simulation time.
  [[nodiscard]] static int day_of(SimTime t) {
    return static_cast<int>(t / kDay);
  }

 private:
  DeviceId id_;
  DeviceSpec spec_;
  std::vector<Session> sessions_;  // sorted, non-overlapping
  int last_participation_day_ = -1;
};

}  // namespace venn
