// Device model: hardware spec, availability sessions, execution-time model.
//
// A device is available only during its sessions (charging + WiFi, paper
// §2.1). When assigned a CL task it computes for a log-normally distributed
// duration scaled by its hardware capacity; if its session ends first, the
// task fails (ephemerality). Each device participates in at most one CL job
// per day (paper §5.1: "Each unique device trace is limited to one CL job
// per day for realism").
//
// Layout note: Device carries the COLD per-device state (id, spec, the
// materialized session vector). The hot state the scheduling loops touch
// per visit — eligibility signature, idle-pool position, the
// one-job-per-day budget — lives in the struct-of-arrays FleetHotState
// (device/fleet_partition.h). The participation budget specifically is
// accessed through this class's API either way: a standalone Device stores
// it inline, while a fleet Device is *bound* to its FleetHotState slot
// (bind_participation_slot) and becomes a view over the shared column, so
// snapshots and hot loops can read the dense int32 array while every call
// site keeps the same Device-level vocabulary.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "device/eligibility.h"
#include "util/ids.h"
#include "util/rng.h"

namespace venn {

// One contiguous availability interval [start, end).
struct Session {
  SimTime start = 0.0;
  SimTime end = 0.0;

  [[nodiscard]] SimTime duration() const { return end - start; }
  [[nodiscard]] bool contains(SimTime t) const { return t >= start && t < end; }
};

class Device {
 public:
  Device(DeviceId id, DeviceSpec spec, std::vector<Session> sessions);

  // Sessionless device for streaming-churn scenarios: availability is
  // pulled lazily from a workload::ChurnStream instead of being stored
  // here, so sessions() stays empty for the device's whole lifetime.
  Device(DeviceId id, DeviceSpec spec) : Device(id, spec, {}) {}

  // Copies and moves re-point the budget at the destination's own inline
  // slot (carrying the value): a binding into some other fleet's hot-state
  // column must not follow the object around.
  Device(const Device& o)
      : id_(o.id_),
        spec_(o.spec_),
        sessions_(o.sessions_),
        own_day_(o.last_participation_day()) {}
  Device(Device&& o) noexcept
      : id_(o.id_),
        spec_(o.spec_),
        sessions_(std::move(o.sessions_)),
        own_day_(o.last_participation_day()) {}
  Device& operator=(const Device& o) {
    if (this == &o) return *this;
    id_ = o.id_;
    spec_ = o.spec_;
    sessions_ = o.sessions_;
    own_day_ = o.last_participation_day();
    day_ = &own_day_;
    return *this;
  }
  Device& operator=(Device&& o) noexcept {
    id_ = o.id_;
    spec_ = o.spec_;
    sessions_ = std::move(o.sessions_);
    own_day_ = o.last_participation_day();
    day_ = &own_day_;
    return *this;
  }

  [[nodiscard]] DeviceId id() const { return id_; }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<Session>& sessions() const {
    return sessions_;
  }
  [[nodiscard]] bool has_sessions() const { return !sessions_.empty(); }

  // Relative execution speed in (0, 1]: a speed-1.0 device finishes a task
  // in its nominal duration; slower devices take proportionally longer.
  // Affine in capacity so even the weakest devices make progress (the
  // long tail of stragglers the matching algorithm of §4.3 targets).
  [[nodiscard]] double speed() const;

  // Samples the wall-clock execution time for a task with nominal duration
  // `nominal` (the duration on a speed-1.0 device), log-normal noise with
  // coefficient of variation `cv` (paper §4.3 cites log-normal response
  // times).
  [[nodiscard]] SimTime sample_exec_time(double nominal, double cv,
                                         Rng& rng) const;

  // --- one-job-per-day bookkeeping -------------------------------------
  // Sentinel for "never participated / budget refunded". INT32_MIN rather
  // than -1: with floor day semantics, day -1 is a legitimate
  // participation day (sessions jittered before t=0), and a -1 sentinel
  // would make its refund a no-op.
  static constexpr std::int32_t kNeverParticipated =
      std::numeric_limits<std::int32_t>::min();

  // Makes this Device a view over the fleet's shared participation-day
  // column: all budget reads/writes go through `slot` (which must outlive
  // the device or any later rebind). The current inline value is migrated
  // into the slot so binding is state-preserving at any point.
  void bind_participation_slot(std::int32_t* slot) {
    *slot = own_day_;
    day_ = slot;
  }

  [[nodiscard]] bool participated_on_day(int day) const {
    return *day_ == day;
  }
  // Raw budget state, for coordinator state snapshots
  // (kNeverParticipated = never/refunded).
  [[nodiscard]] int last_participation_day() const { return *day_; }
  void mark_participation(int day) { *day_ = day; }

  // Straggler release (over-selection protocols): a device cut off
  // mid-computation did not actually spend its participation — refund the
  // budget it was charged on `day` so it is re-offerable under the usual
  // one-job-per-day rules. No-op if the device has since been charged for
  // a different day.
  void refund_participation(int day) {
    if (*day_ == day) *day_ = kNeverParticipated;
  }

  // Day index of a simulation time, floor semantics: day_of(-0.5) == -1
  // and day_of(k*kDay) == k exactly. (Truncation toward zero would fold
  // days -1..0 onto day 0 and corrupt one-job-per-day budgeting for
  // sessions jittered before t=0 — see the churn models' negative-jitter
  // note in src/workload/churn.cc.)
  [[nodiscard]] static int day_of(SimTime t) {
    return static_cast<int>(std::floor(t / kDay));
  }

 private:
  DeviceId id_;
  DeviceSpec spec_;
  std::vector<Session> sessions_;  // sorted, non-overlapping
  std::int32_t own_day_ = kNeverParticipated;  // budget of an unbound device
  std::int32_t* day_ = &own_day_;  // the active slot (inline or fleet SoA)
};

}  // namespace venn
