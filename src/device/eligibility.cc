#include "device/eligibility.h"

#include <stdexcept>

namespace venn {

Requirement requirement_for(ResourceCategory c) {
  switch (c) {
    case ResourceCategory::kGeneral:
      return {0.0, 0.0};
    case ResourceCategory::kComputeRich:
      return {kRichThreshold, 0.0};
    case ResourceCategory::kMemoryRich:
      return {0.0, kRichThreshold};
    case ResourceCategory::kHighPerf:
      return {kRichThreshold, kRichThreshold};
  }
  throw std::invalid_argument("unknown ResourceCategory");
}

std::string category_name(ResourceCategory c) {
  switch (c) {
    case ResourceCategory::kGeneral:
      return "General";
    case ResourceCategory::kComputeRich:
      return "Compute-Rich";
    case ResourceCategory::kMemoryRich:
      return "Memory-Rich";
    case ResourceCategory::kHighPerf:
      return "High-Perf";
  }
  throw std::invalid_argument("unknown ResourceCategory");
}

ResourceCategory finest_region(const DeviceSpec& spec) {
  const bool c = spec.cpu_score >= kRichThreshold;
  const bool m = spec.mem_score >= kRichThreshold;
  if (c && m) return ResourceCategory::kHighPerf;
  if (c) return ResourceCategory::kComputeRich;
  if (m) return ResourceCategory::kMemoryRich;
  return ResourceCategory::kGeneral;
}

std::vector<ResourceCategory> all_categories() {
  return {ResourceCategory::kGeneral, ResourceCategory::kComputeRich,
          ResourceCategory::kMemoryRich, ResourceCategory::kHighPerf};
}

std::size_t SignatureSpace::register_requirement(const Requirement& req) {
  for (std::size_t i = 0; i < reqs_.size(); ++i) {
    if (reqs_[i] == req) return i;
  }
  if (reqs_.size() >= kMaxRequirements) {
    throw std::length_error("SignatureSpace: too many distinct requirements");
  }
  reqs_.push_back(req);
  return reqs_.size() - 1;
}

SignatureSpace::Signature SignatureSpace::signature_of(
    const DeviceSpec& spec) const {
  Signature s = 0;
  for (std::size_t i = 0; i < reqs_.size(); ++i) {
    if (reqs_[i].eligible(spec)) s |= (Signature{1} << i);
  }
  return s;
}

}  // namespace venn
