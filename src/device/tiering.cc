#include "device/tiering.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace venn {

TierProfile::TierProfile(std::size_t num_tiers, double tail_percentile)
    : num_tiers_(num_tiers), tail_percentile_(tail_percentile) {
  if (num_tiers_ == 0) throw std::invalid_argument("num_tiers must be >= 1");
  if (tail_percentile_ <= 0.0 || tail_percentile_ > 100.0) {
    throw std::invalid_argument("tail_percentile out of range");
  }
}

void TierProfile::observe(double capacity, double response_time) {
  capacities_.push_back(capacity);
  response_times_.push_back(response_time);
}

bool TierProfile::ready() const {
  // Require ~5 samples per tier before trusting quantile thresholds.
  return capacities_.size() >= 5 * num_tiers_;
}

void TierProfile::set_external_thresholds(std::vector<double> thresholds) {
  if (thresholds.size() != num_tiers_ + 1) {
    throw std::invalid_argument("need num_tiers + 1 thresholds");
  }
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    if (thresholds[i] < thresholds[i - 1]) {
      throw std::invalid_argument("thresholds must be ascending");
    }
  }
  external_thresholds_ = std::move(thresholds);
}

std::vector<double> TierProfile::thresholds() const {
  if (!external_thresholds_.empty()) return external_thresholds_;
  if (!ready()) throw std::logic_error("TierProfile not ready");
  Summary cap{std::span<const double>(capacities_)};
  std::vector<double> th;
  th.reserve(num_tiers_ + 1);
  th.push_back(0.0);
  for (std::size_t v = 1; v < num_tiers_; ++v) {
    th.push_back(cap.percentile(100.0 * static_cast<double>(v) /
                                static_cast<double>(num_tiers_)));
  }
  th.push_back(1.0 + 1e-12);
  return th;
}

std::size_t TierProfile::tier_of(double capacity) const {
  const auto th = thresholds();
  for (std::size_t v = num_tiers_; v-- > 0;) {
    if (capacity >= th[v]) return v;
  }
  return 0;
}

double TierProfile::speedup(std::size_t tier) const {
  if (tier >= num_tiers_) throw std::out_of_range("tier index");
  const auto th = thresholds();
  Summary in_tier;
  Summary all;
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    all.add(response_times_[i]);
    if (capacities_[i] >= th[tier] && capacities_[i] < th[tier + 1]) {
      in_tier.add(response_times_[i]);
    }
  }
  if (in_tier.empty() || all.empty()) return 1.0;
  const double t0 = all.percentile(tail_percentile_);
  if (t0 <= 0.0) return 1.0;
  return in_tier.percentile(tail_percentile_) / t0;
}

std::optional<double> TierProfile::tail_response_time() const {
  if (response_times_.empty()) return std::nullopt;
  Summary s{std::span<const double>(response_times_)};
  return s.percentile(tail_percentile_);
}

bool tiering_beneficial(std::size_t num_tiers, double g_u, double c) {
  // V + g_u * c < 1 + c  (Algorithm 2 line 7). With V = 1 tiering is a
  // no-op and the condition reduces to g_u < 1 exactly when c > 0.
  return static_cast<double>(num_tiers) + g_u * c < 1.0 + c;
}

}  // namespace venn
