#include "device/fleet_partition.h"

#include <algorithm>

#include "device/device.h"

namespace venn {

void FleetHotState::init(std::span<const Device> devices, std::size_t shards) {
  const std::size_t n = devices.size();
  partition = FleetPartition(n, shards);

  signature.assign(n, 0);
  idle_pos.assign(n, 0);
  participation_day.assign(n, Device::kNeverParticipated);
  spec.clear();
  spec.reserve(n);
  session_checkins.clear();
  session_checkins.reserve(n);
  session_last_end.clear();
  session_last_end.reserve(n);

  session_span = 0.0;
  session_time = 0.0;
  session_count = 0.0;

  // One pass in device order: the same accumulation order the legacy
  // Device-walk loops used, so every double aggregate reproduces the scan
  // path bit for bit.
  for (const Device& d : devices) {
    spec.push_back(d.spec());
    session_checkins.push_back(static_cast<double>(d.sessions().size()));
    SimTime last_end = 0.0;
    if (!d.sessions().empty()) {
      last_end = d.sessions().back().end;
      session_span = std::max(session_span, last_end);
    }
    session_last_end.push_back(last_end);
    for (const Session& s : d.sessions()) {
      session_time += s.duration();
      session_count += 1.0;
    }
  }
}

}  // namespace venn
