#include "device/device.h"

#include <algorithm>
#include <stdexcept>

namespace venn {

Device::Device(DeviceId id, DeviceSpec spec, std::vector<Session> sessions)
    : id_(id), spec_(spec), sessions_(std::move(sessions)) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].end <= sessions_[i].start) {
      throw std::invalid_argument("Device: empty or inverted session");
    }
    if (i > 0 && sessions_[i].start < sessions_[i - 1].end) {
      throw std::invalid_argument("Device: overlapping sessions");
    }
  }
}

double Device::speed() const {
  // Map capacity in [0,1] to speed in [0.12, 1.0]: an ~8x spread between the
  // weakest and strongest devices. AI-Benchmark (the paper's Fig. 2b data
  // source) reports on-device inference times spanning roughly an order of
  // magnitude across the smartphone population, which is what makes
  // straggler-aware tier matching (§4.3) worthwhile.
  return 0.12 + 0.88 * spec_.capacity();
}

SimTime Device::sample_exec_time(double nominal, double cv, Rng& rng) const {
  if (nominal <= 0.0) throw std::invalid_argument("nominal must be > 0");
  const double mean = nominal / speed();
  return rng.lognormal_mean_cv(mean, cv);
}

}  // namespace venn
