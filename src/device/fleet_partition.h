// FleetPartition: the immutable device→shard map of sharded execution.
//
// Sharded fleet execution partitions the device population into
// `shards` contiguous index ranges — shard s owns
// [num_devices·s/shards, num_devices·(s+1)/shards). Contiguity is what
// makes the per-shard structures slices rather than scatter sets: a
// shard's cut of the eligibility-index signature array is a subrange, its
// idle-pool segment is countable with one load, and range loops stay
// prefetch-friendly.
//
// The partition is a pure function of (num_devices, shards) — no state,
// no registration order — so every subsystem that mentions a home shard
// (coordinator segment accounting, straggler-release ownership checks,
// index rebuckets) agrees by construction, and a given shard count always
// decomposes the fleet the same way.
#pragma once

#include <cstddef>

namespace venn {

struct FleetPartition {
  std::size_t num_devices = 0;
  std::size_t shards = 1;

  FleetPartition() = default;
  FleetPartition(std::size_t devices, std::size_t shard_count)
      : num_devices(devices), shards(shard_count) {}

  // Device-index range owned by shard s: [begin(s), end(s)).
  [[nodiscard]] std::size_t begin(std::size_t s) const {
    return num_devices * s / shards;
  }
  [[nodiscard]] std::size_t end(std::size_t s) const {
    return num_devices * (s + 1) / shards;
  }

  // Home shard of device d — the inverse of begin/end: shard_of(d) == s
  // exactly when begin(s) <= d < end(s) (tests/shard_pool_test.cc checks
  // the two agree over degenerate and non-dividing sizes).
  [[nodiscard]] std::size_t shard_of(std::size_t d) const {
    return ((d + 1) * shards - 1) / num_devices;
  }
};

}  // namespace venn
