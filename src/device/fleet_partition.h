// FleetPartition: the immutable device→shard map of sharded execution —
// and FleetHotState, the struct-of-arrays store of the per-device state the
// scheduling hot path actually touches.
//
// Sharded fleet execution partitions the device population into
// `shards` contiguous index ranges — shard s owns
// [num_devices·s/shards, num_devices·(s+1)/shards). Contiguity is what
// makes the per-shard structures slices rather than scatter sets: a
// shard's cut of the eligibility-index signature array is a subrange, its
// idle-pool segment is countable with one load, and range loops stay
// prefetch-friendly.
//
// The partition is a pure function of (num_devices, shards) — no state,
// no registration order — so every subsystem that mentions a home shard
// (coordinator segment accounting, straggler-release ownership checks,
// index rebuckets) agrees by construction, and a given shard count always
// decomposes the fleet the same way.
//
// FleetHotState is the layout half of the same story. `Device` objects
// carry cold state (id, spec, the materialized session vector) and are
// ~80 bytes plus a heap allocation each; iterating them for the per-visit
// sweep filter, the per-registration index rebucket or the `index=0`
// supply scans strides over memory the loop mostly does not read. The hot
// state those loops DO read — the cached eligibility signature, the
// idle-pool position (the availability flag), the one-job-per-day
// participation budget, the spec scores and the per-device session
// statistics — lives here instead, one dense array per field, indexed by
// device position:
//
//   * `signature[d]`   — the ≤64-bit requirement bitmask the eligibility
//                        index maintains (core/elig_index.cc writes it on
//                        registration rebuckets; the sweep filter ANDs it
//                        against the manager's wants mask). Contiguous
//                        uint64s, so the batched signature∩wants pass is a
//                        branch-light scan the compiler can vectorize.
//   * `idle_pos[d]`    — idle-pool position + 1; 0 = not parked. The
//                        coordinator's dense pool keeps its vector of
//                        members; this is the membership/position side.
//   * `participation_day[d]` — last day the device participated
//                        (Device::kNeverParticipated = never/refunded; -1
//                        is a real day under floor semantics). Device
//                        objects become views over
//                        this array (Device::bind_participation_slot), so
//                        the budget API is unchanged while snapshots and
//                        hot loops read one int32 array.
//   * `spec[d]`, `session_checkins[d]`, `session_last_end[d]` — the exact
//                        per-device quantities the `index=0` supply scans
//                        read, densely packed so the fleet scan never
//                        touches a Device object.
//
// The arrays are plain data with no invariants of their own: the
// coordinator owns the store, the eligibility index writes the signature
// column, and every consumer indexes by the same device position the
// partition shards over. Aggregate session statistics are accumulated in
// device order at init, matching the legacy Device-walk loops bit for bit
// (double sums are order-sensitive; tests assert byte-identity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "device/eligibility.h"
#include "util/ids.h"

namespace venn {

class Device;

struct FleetPartition {
  std::size_t num_devices = 0;
  std::size_t shards = 1;

  FleetPartition() = default;
  FleetPartition(std::size_t devices, std::size_t shard_count)
      : num_devices(devices), shards(shard_count) {}

  // Device-index range owned by shard s: [begin(s), end(s)).
  [[nodiscard]] std::size_t begin(std::size_t s) const {
    return num_devices * s / shards;
  }
  [[nodiscard]] std::size_t end(std::size_t s) const {
    return num_devices * (s + 1) / shards;
  }

  // Home shard of device d — the inverse of begin/end: shard_of(d) == s
  // exactly when begin(s) <= d < end(s) (tests/shard_pool_test.cc checks
  // the two agree over degenerate and non-dividing sizes).
  [[nodiscard]] std::size_t shard_of(std::size_t d) const {
    return ((d + 1) * shards - 1) / num_devices;
  }
};

// Struct-of-arrays hot state of one device fleet. See the file comment for
// the field-by-field story. Owned by the Coordinator; shared by reference
// with the EligibilityIndex (which maintains `signature`) and read by the
// sweep filter and the `index=0` supply scans.
class FleetHotState {
 public:
  FleetHotState() = default;

  // Lays out the arrays for `devices` under `shards` contiguous shards and
  // accumulates the population session statistics in device order (the
  // legacy scan order — byte-identical double sums).
  void init(std::span<const Device> devices, std::size_t shards);

  [[nodiscard]] std::size_t size() const { return spec.size(); }

  FleetPartition partition;

  // --- hot columns, indexed by device position --------------------------
  std::vector<std::uint64_t> signature;   // eligibility signature cache
  std::vector<std::uint32_t> idle_pos;    // pool position + 1; 0 = absent
  std::vector<std::int32_t> participation_day;  // last day participated
  std::vector<DeviceSpec> spec;           // dense spec copy (scan filters)
  std::vector<double> session_checkins;   // materialized sessions, integer-
                                          // valued (the scan's numerator)
  std::vector<SimTime> session_last_end;  // last session end; 0 = none

  // --- population session aggregates (device-order accumulation) --------
  SimTime session_span = 0.0;   // max session_last_end over the fleet
  double session_time = 0.0;    // total session seconds
  double session_count = 0.0;   // total session count (integer-valued)
};

}  // namespace venn
