// Tier partitioning and profiling for resource-aware device matching.
//
// Paper §4.3 / Algorithm 2: "Venn partitions the eligible devices into V
// tiers based on their hardware capabilities ... Venn adaptively sets the
// tier partition thresholds based on the hardware capacity distribution of
// the devices that participated in earlier rounds" and "Venn profiles and
// estimates the response collection time for each device tier v and
// subsequently computes the speed-up factor g_v = t_v / t_0", using the 95th
// percentile as the statistical tail latency.
//
// TierProfile accumulates (capacity, response-time) observations for one job
// and answers: tier thresholds (capacity quantiles), the tier of a device,
// and the per-tier speed-up factors g_v.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "device/eligibility.h"

namespace venn {

class TierProfile {
 public:
  // `num_tiers` is V in the paper (Fig. 13 sweeps 1..4). `tail_percentile`
  // is the statistical tail used for response collection time (95th).
  explicit TierProfile(std::size_t num_tiers, double tail_percentile = 95.0);

  [[nodiscard]] std::size_t num_tiers() const { return num_tiers_; }

  // Record one participant observation from a finished round.
  void observe(double capacity, double response_time);

  [[nodiscard]] std::size_t num_observations() const {
    return capacities_.size();
  }

  // True once enough observations exist to build meaningful tiers (at least
  // a handful per tier).
  [[nodiscard]] bool ready() const;

  // Pins the capacity thresholds externally instead of deriving them from
  // this job's own participants. The Venn resource manager observes every
  // device check-in, so it can partition the *eligible population* (§4.3
  // "partitions the eligible devices into V tiers") rather than the job's
  // participant sample — important because a tiered job's participants are
  // tier-biased, and self-derived quantiles would drift toward the top of
  // the range until the accepted band is a sliver of the pool. Must contain
  // num_tiers + 1 ascending values starting at 0.
  void set_external_thresholds(std::vector<double> thresholds);

  // Capacity thresholds: tier v (0 = slowest) covers capacities in
  // [threshold[v], threshold[v+1]). External if pinned, otherwise computed
  // from observed participant quantiles. Requires ready().
  [[nodiscard]] std::vector<double> thresholds() const;

  // Tier index of a device capacity under the current thresholds.
  // Requires ready().
  [[nodiscard]] std::size_t tier_of(double capacity) const;

  // Speed-up factor g_v = t_v / t_0 where t_v is the tail response time of
  // tier v and t_0 the tail over all observations (non-tiered). Values < 1
  // mean tier v responds faster than the mixed population. Requires ready().
  [[nodiscard]] double speedup(std::size_t tier) const;

  // Tail response time across all observations (t_0).
  [[nodiscard]] std::optional<double> tail_response_time() const;

 private:
  std::size_t num_tiers_;
  double tail_percentile_;
  std::vector<double> capacities_;
  std::vector<double> response_times_;  // parallel to capacities_
  std::vector<double> external_thresholds_;  // empty = derive from samples
};

// The activation condition of Algorithm 2 (line 7 / Fig. 7): tier-based
// matching is worthwhile iff  V + g_u * c  <  1 + c, i.e. the response-time
// saving outweighs the V-fold slower allocation rate. `c` is the job's
// response-collection-time : scheduling-delay ratio (c_i in the paper).
[[nodiscard]] bool tiering_beneficial(std::size_t num_tiers, double g_u,
                                      double c);

}  // namespace venn
