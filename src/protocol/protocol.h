// RoundProtocol: the pluggable round-aggregation regime of a CL job.
//
// The paper evaluates exactly one protocol — synchronous rounds that
// complete at >= 80% of the target responses (§5.1) and abort at the
// reporting deadline — and the coordinator used to hard-code it. Production
// CL/FL platforms run other regimes: over-selection (select K x target
// devices, cut the round off as soon as the target reports, release the
// stragglers) and buffered-asynchronous aggregation (FedBuff-style: devices
// are admitted continuously and the server commits an aggregation round
// every B responses, tracking how stale each response is).
//
// This interface factors the four decisions the coordinator's round
// lifecycle consults, so a protocol is data to the simulator the same way a
// scheduling policy or a churn model is:
//
//   selection target      — devices the round's resource request acquires
//   completion predicate  — responses at which the round commits, and
//                           whether it may commit before full allocation
//   deadline behavior     — whether a reporting deadline aborts the round
//   straggler disposition — whether devices still computing at commit/abort
//                           are released back to the idle pool (budget
//                           refunded, work wasted) or left to finish into
//                           the void
//
// Implementations must be deterministic and stateless per call: the
// coordinator queries them inside the simulation hot loop, and two runs at
// the same seed must replay byte-identically. Per-run randomness, if a
// protocol ever needs it, comes from the construction seed.
#pragma once

#include <memory>
#include <string>

namespace venn::protocol {

class RoundProtocol {
 public:
  virtual ~RoundProtocol() = default;

  // Display name ("sync", "overcommit", "async").
  [[nodiscard]] virtual std::string name() const = 0;

  // ----- selection target -------------------------------------------------
  // Devices the round's resource request asks the manager for, given the
  // job's per-round participant target D. Always >= 1; over-selection
  // protocols return more than D.
  [[nodiscard]] virtual int selection_target(int demand) const = 0;

  // ----- completion predicate ---------------------------------------------
  // Responses at which the round commits. Always >= 1 and achievable from
  // the selection target (continuous-admission protocols may exceed it,
  // since freed slots refill).
  [[nodiscard]] virtual int commit_threshold(int demand) const = 0;

  // May the round commit while the request is still acquiring devices
  // (before the selection target is fully assigned)? Over-selection cuts
  // off at the target responses even if the K x D tail was never acquired.
  [[nodiscard]] virtual bool commit_while_pending() const { return false; }

  // Does the request survive a commit? Buffered aggregation keeps one
  // long-lived request per job: each commit advances the round counter and
  // resets the response count, and in-flight devices keep counting toward
  // later commits (their responses arrive stale).
  [[nodiscard]] virtual bool keeps_request_open() const { return false; }

  // ----- admission --------------------------------------------------------
  // Does a response (or an in-flight failure) free its assignment slot for
  // another device? Continuous admission is what makes buffered
  // aggregation "admit devices continuously": the request's demand bounds
  // concurrency, not total participation.
  [[nodiscard]] virtual bool continuous_admission() const { return false; }

  // ----- deadline / abort behavior ----------------------------------------
  // Is a reporting deadline armed at full allocation, aborting the round
  // (and resubmitting the request) when the commit threshold is not met in
  // time? Buffered aggregation has no round deadline — progress is gated
  // on responses alone.
  [[nodiscard]] virtual bool deadline_aborts() const { return true; }

  // ----- straggler disposition --------------------------------------------
  // At commit or abort, are devices still computing for the round released
  // back to the idle pool — their day-participation budget refunded, their
  // in-flight work wasted — rather than left to finish a result nobody
  // will read? Released devices are immediately re-offerable under the
  // usual one-job-per-day rules.
  [[nodiscard]] virtual bool releases_stragglers() const { return false; }
};

// The default protocol: the paper's synchronous rounds (selection target =
// D, commit at >= ceil(report-fraction x D), deadline aborts, stragglers
// left to finish). A process-lifetime instance used by the coordinator
// whenever no protocol is configured, keeping legacy runs byte-identical.
[[nodiscard]] const RoundProtocol& sync_protocol();

}  // namespace venn::protocol
