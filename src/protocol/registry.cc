#include "protocol/registry.h"

#include "protocol/builtins.h"

namespace venn::protocol {

ProtocolRegistry& protocol_registry() {
  // Leaked singleton (never destroyed), like the workload registries:
  // external ProtocolRegistration objects may run at static-init time and
  // the registry must survive until the last user.
  static ProtocolRegistry* registry = [] {
    auto* reg = new ProtocolRegistry("round protocol");
    reg->register_generator(
        "sync", {"report-fraction"},
        [](const workload::GenParams& p, std::uint64_t) {
          return std::make_unique<SyncProtocol>(
              p.prob("report-fraction", kReportFraction));
        });
    reg->register_generator(
        "overcommit", {"overcommit", "report-fraction"},
        [](const workload::GenParams& p, std::uint64_t) {
          return std::make_unique<OvercommitProtocol>(
              p.positive("overcommit", 1.3),
              p.prob("report-fraction", kReportFraction));
        });
    reg->register_generator(
        "async", {"buffer", "concurrency"},
        [](const workload::GenParams& p, std::uint64_t) {
          return std::make_unique<AsyncProtocol>(p.count("buffer", 0),
                                                 p.count("concurrency", 0));
        });
    return reg;
  }();
  return *registry;
}

std::unique_ptr<RoundProtocol> build_protocol(
    const workload::GeneratorSpec& spec, std::uint64_t seed) {
  const std::string& name = spec.configured() ? spec.name : "sync";
  return protocol_registry().create(name, spec.params, seed);
}

std::string describe_protocols() {
  std::string out =
      "round protocols (protocol=<name>, knobs as protocol.<key>=<value>):\n";
  for (const auto& name : protocol_registry().names()) {
    out += "  " + name;
    const auto& keys = protocol_registry().keys(name);
    if (!keys.empty()) {
      out += "  keys:";
      for (const auto& k : keys) out += " " + k;
    }
    out += "\n";
  }
  return out;
}

}  // namespace venn::protocol
