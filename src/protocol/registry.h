// ProtocolRegistry: the open, string-keyed round-protocol extension point —
// the aggregation-regime mirror of api::PolicyRegistry and the workload
// generator registries, built on the same GeneratorRegistry machinery so
// accepted-key validation, unknown-name errors and --list output all behave
// identically across the three extension surfaces.
//
// Three protocols are pre-registered:
//
//   sync        keys: report-fraction
//       The paper's §5.1 regime: request exactly D devices, commit at
//       >= ceil(report-fraction x D) responses (default 0.8), abort at the
//       reporting deadline, let stragglers finish into the void.
//   overcommit  keys: overcommit, report-fraction
//       Over-selection: request ceil(K x D) devices (K = `overcommit`,
//       default 1.3), cut the round off as soon as ceil(report-fraction x D)
//       responses land (even mid-allocation), and release devices still
//       computing back to the idle pool with their day budget refunded.
//   async       keys: buffer, concurrency
//       FedBuff-style buffered aggregation: one long-lived request per job
//       bounds concurrency (`concurrency`, default D), responses free their
//       slot so devices are admitted continuously, and a round commits
//       every `buffer` responses (default ceil(0.8 x D)) with per-response
//       staleness tracked. No reporting deadline.
//
// External protocols self-register from their own translation unit:
//
//   const venn::protocol::ProtocolRegistration kMine{
//       protocol::protocol_registry(), "quorum", {"quorum-frac"},
//       [](const workload::GenParams& p, std::uint64_t) {
//         return std::make_unique<QuorumProtocol>(p.prob("quorum-frac", 0.5));
//       }};
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "protocol/protocol.h"
#include "workload/generator.h"
#include "workload/workload.h"

namespace venn::protocol {

using ProtocolRegistry = workload::GeneratorRegistry<RoundProtocol>;
using ProtocolRegistration = workload::GeneratorRegistration<RoundProtocol>;

// The process-wide registry, with the built-in protocols pre-registered.
[[nodiscard]] ProtocolRegistry& protocol_registry();

// Instantiates the protocol a scenario names. An unconfigured spec (empty
// name) yields the default "sync" protocol, so legacy scenarios replay
// byte-identically. Throws std::invalid_argument for unknown names or
// parameter keys the protocol does not accept.
[[nodiscard]] std::unique_ptr<RoundProtocol> build_protocol(
    const workload::GeneratorSpec& spec, std::uint64_t seed);

// Human-readable listing with accepted keys — the protocol section of
// `venn_sim_cli --list`.
[[nodiscard]] std::string describe_protocols();

}  // namespace venn::protocol
