// The three built-in round protocols. Exposed as concrete classes (rather
// than hidden behind the registry factories) so unit tests and embedders
// can construct them directly; scenario-driven code should go through
// protocol_registry() / build_protocol() instead.
#pragma once

#include <string>

#include "job/request.h"
#include "protocol/protocol.h"

namespace venn::protocol {

// The paper's §5.1 regime: request exactly D devices, commit at
// >= ceil(report_fraction x D) responses, abort at the reporting deadline,
// let stragglers finish into the void.
class SyncProtocol final : public RoundProtocol {
 public:
  explicit SyncProtocol(double report_fraction = kReportFraction);

  [[nodiscard]] std::string name() const override { return "sync"; }
  [[nodiscard]] int selection_target(int demand) const override;
  [[nodiscard]] int commit_threshold(int demand) const override;

 private:
  double report_fraction_;
};

// Over-selection: request ceil(factor x D) devices, commit as soon as the
// sync threshold is met (possibly before the tail of the selection is even
// acquired), and release devices still computing back to the idle pool
// with their day budget refunded. Throws std::invalid_argument for
// factor < 1.
class OvercommitProtocol final : public RoundProtocol {
 public:
  explicit OvercommitProtocol(double factor = 1.3,
                              double report_fraction = kReportFraction);

  [[nodiscard]] std::string name() const override { return "overcommit"; }
  [[nodiscard]] int selection_target(int demand) const override;
  [[nodiscard]] int commit_threshold(int demand) const override;
  [[nodiscard]] bool commit_while_pending() const override { return true; }
  [[nodiscard]] bool releases_stragglers() const override { return true; }

 private:
  double factor_;
  double report_fraction_;
};

// FedBuff-style buffered aggregation: one long-lived request per job whose
// demand bounds concurrency (default D; `concurrency` overrides), responses
// free their slot so devices are admitted continuously, and a round commits
// every `buffer` responses (default ceil(0.8 x D)). No reporting deadline;
// responses assigned under an earlier round index arrive stale and the
// coordinator tracks that staleness per response.
class AsyncProtocol final : public RoundProtocol {
 public:
  explicit AsyncProtocol(int buffer = 0, int concurrency = 0);

  [[nodiscard]] std::string name() const override { return "async"; }
  [[nodiscard]] int selection_target(int demand) const override;
  [[nodiscard]] int commit_threshold(int demand) const override;
  [[nodiscard]] bool commit_while_pending() const override { return true; }
  [[nodiscard]] bool keeps_request_open() const override { return true; }
  [[nodiscard]] bool continuous_admission() const override { return true; }
  [[nodiscard]] bool deadline_aborts() const override { return false; }

 private:
  int buffer_;
  int concurrency_;
};

}  // namespace venn::protocol
