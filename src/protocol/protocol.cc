#include "protocol/protocol.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "protocol/builtins.h"

namespace venn::protocol {

SyncProtocol::SyncProtocol(double report_fraction)
    : report_fraction_(report_fraction) {}

int SyncProtocol::selection_target(int demand) const {
  return std::max(1, demand);
}

int SyncProtocol::commit_threshold(int demand) const {
  return report_threshold(report_fraction_, demand);
}

OvercommitProtocol::OvercommitProtocol(double factor, double report_fraction)
    : factor_(factor), report_fraction_(report_fraction) {
  if (factor < 1.0) {
    throw std::invalid_argument("protocol.overcommit must be >= 1, got " +
                                std::to_string(factor));
  }
}

int OvercommitProtocol::selection_target(int demand) const {
  const int target =
      static_cast<int>(std::ceil(factor_ * std::max(1, demand) - 1e-9));
  return std::max(target, commit_threshold(demand));
}

int OvercommitProtocol::commit_threshold(int demand) const {
  return report_threshold(report_fraction_, demand);
}

AsyncProtocol::AsyncProtocol(int buffer, int concurrency)
    : buffer_(buffer), concurrency_(concurrency) {}

int AsyncProtocol::selection_target(int demand) const {
  return std::max(1, concurrency_ > 0 ? concurrency_ : demand);
}

int AsyncProtocol::commit_threshold(int demand) const {
  if (buffer_ > 0) return buffer_;
  return report_threshold(kReportFraction, demand);
}

const RoundProtocol& sync_protocol() {
  static const SyncProtocol kDefault(kReportFraction);
  return kDefault;
}

}  // namespace venn::protocol
