#include "orchestrator/metrics.h"

#include <cstdlib>

namespace venn::orchestrator {

namespace {

// Parses a number starting at text[pos] (spaces skipped); false when no
// digits are consumed. `end_out` receives the first unconsumed position.
bool parse_number_at(const std::string& text, std::size_t pos, double* out,
                     std::size_t* end_out) {
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos >= text.size()) return false;
  const char* start = text.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  if (end_out != nullptr) *end_out = pos + static_cast<std::size_t>(end - start);
  return true;
}

}  // namespace

bool find_cell_metric(const std::string& text, const std::string& cell_needle,
                      const std::string& metric_key, double* out) {
  const auto cell_pos = text.find(cell_needle);
  if (cell_pos == std::string::npos) return false;
  // The needle matches inside a flat cell object (no nested braces in the
  // bench output format), so the first '}' after it closes this cell.
  // Without this bound, a cell lacking the key borrows the value from the
  // NEXT cell that has it — exactly the silent-corruption bug this helper
  // replaces.
  const auto cell_end = text.find('}', cell_pos);
  const std::string key = "\"" + metric_key + "\": ";
  const auto key_pos = text.find(key, cell_pos);
  if (key_pos == std::string::npos) return false;
  if (cell_end != std::string::npos && key_pos > cell_end) return false;
  return parse_number_at(text, key_pos + key.size(), out, nullptr);
}

bool scrape_labeled_double(const std::string& text, const std::string& label,
                           double* out) {
  const auto pos = text.find(label);
  if (pos == std::string::npos) return false;
  return parse_number_at(text, pos + label.size(), out, nullptr);
}

bool scrape_labeled_fraction(const std::string& text, const std::string& label,
                             std::uint64_t* num, std::uint64_t* den) {
  const auto pos = text.find(label);
  if (pos == std::string::npos) return false;
  double a = 0.0;
  std::size_t after = 0;
  if (!parse_number_at(text, pos + label.size(), &a, &after)) return false;
  if (after >= text.size() || text[after] != '/') return false;
  double b = 0.0;
  if (!parse_number_at(text, after + 1, &b, nullptr)) return false;
  if (a < 0.0 || b < 0.0) return false;
  *num = static_cast<std::uint64_t>(a);
  *den = static_cast<std::uint64_t>(b);
  return true;
}

}  // namespace venn::orchestrator
