#include "orchestrator/config.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "orchestrator/json.h"

namespace venn::orchestrator {

namespace {

[[noreturn]] void fail(const std::string& origin, const std::string& what) {
  throw std::invalid_argument(origin + ": " + what);
}

// Run ids and experiment names become directory names; keep them to a
// conservative filesystem-safe alphabet so a config cannot traverse paths.
void check_id(const std::string& origin, const std::string& what,
              const std::string& id) {
  if (id.empty()) fail(origin, what + " must not be empty");
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      fail(origin, what + " \"" + id +
                       "\" contains characters outside [A-Za-z0-9._-]");
    }
  }
  if (id == "." || id == "..") fail(origin, what + " \"" + id + "\" is reserved");
}

void check_known_keys(const std::string& origin, const std::string& where,
                      const Json& obj, const std::set<std::string>& known) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (known.count(key) == 0) {
      fail(origin, "unknown key \"" + key + "\" in " + where);
    }
  }
}

std::string get_string(const std::string& origin, const std::string& where,
                       const Json& v) {
  if (!v.is_string()) fail(origin, where + ": expected a string");
  return v.as_string();
}

std::vector<std::string> get_string_array(const std::string& origin,
                                          const std::string& where,
                                          const Json& v) {
  if (!v.is_array()) fail(origin, where + ": expected an array of strings");
  std::vector<std::string> out;
  out.reserve(v.items().size());
  for (const Json& item : v.items()) {
    if (!item.is_string()) {
      fail(origin, where + ": expected an array of strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

int get_int(const std::string& origin, const std::string& where,
            const Json& v) {
  if (!v.is_number()) fail(origin, where + ": expected a number");
  const double d = v.as_number();
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
    fail(origin, where + ": expected an integer");
  }
  return static_cast<int>(d);
}

struct MatrixAxis {
  std::string name;
  std::vector<std::string> args;
};

void expand_matrix(const std::string& origin, const Json& matrix,
                   ExperimentConfig* cfg) {
  check_known_keys(origin, "matrix", matrix,
                   {"binary", "common_args", "scenarios", "policies",
                    "protocols", "seeds"});
  const Json* binary = matrix.find("binary");
  if (binary == nullptr) fail(origin, "matrix: missing \"binary\"");
  const std::string bin = get_string(origin, "matrix.binary", *binary);

  std::vector<std::string> common;
  if (const Json* v = matrix.find("common_args")) {
    common = get_string_array(origin, "matrix.common_args", *v);
  }

  std::vector<MatrixAxis> scenarios;
  if (const Json* v = matrix.find("scenarios")) {
    if (!v->is_array()) fail(origin, "matrix.scenarios: expected an array");
    for (const Json& s : v->items()) {
      if (!s.is_object()) {
        fail(origin, "matrix.scenarios: expected objects with name/args");
      }
      check_known_keys(origin, "matrix.scenarios entry", s, {"name", "args"});
      const Json* name = s.find("name");
      if (name == nullptr) fail(origin, "matrix.scenarios entry: missing \"name\"");
      MatrixAxis axis;
      axis.name = get_string(origin, "matrix.scenarios name", *name);
      check_id(origin, "scenario name", axis.name);
      if (const Json* args = s.find("args")) {
        axis.args = get_string_array(origin, "matrix.scenarios args", *args);
      }
      scenarios.push_back(std::move(axis));
    }
  }
  if (scenarios.empty()) scenarios.push_back({"default", {}});

  std::vector<std::string> policies{"venn"};
  if (const Json* v = matrix.find("policies")) {
    policies = get_string_array(origin, "matrix.policies", *v);
    for (const std::string& p : policies) check_id(origin, "policy", p);
  }
  std::vector<std::string> protocols{"sync"};
  if (const Json* v = matrix.find("protocols")) {
    protocols = get_string_array(origin, "matrix.protocols", *v);
    for (const std::string& p : protocols) check_id(origin, "protocol", p);
  }
  std::vector<std::uint64_t> seeds{42};
  if (const Json* v = matrix.find("seeds")) {
    if (!v->is_array()) fail(origin, "matrix.seeds: expected an array");
    seeds.clear();
    for (const Json& s : v->items()) {
      if (!s.is_number()) fail(origin, "matrix.seeds: expected numbers");
      const double d = s.as_number();
      if (d != std::floor(d) || d < 0.0 || d > 1.8e19) {
        fail(origin, "matrix.seeds: expected non-negative integers");
      }
      seeds.push_back(static_cast<std::uint64_t>(d));
    }
  }
  if (policies.empty() || protocols.empty() || seeds.empty()) {
    fail(origin, "matrix axes must not be empty");
  }

  for (const MatrixAxis& sc : scenarios) {
    for (const std::string& pol : policies) {
      for (const std::string& proto : protocols) {
        for (const std::uint64_t seed : seeds) {
          RunSpec run;
          run.id = sc.name + "-" + pol + "-" + proto + "-s" +
                   std::to_string(seed);
          run.kind = "matrix";
          run.binary = bin;
          run.args = common;
          run.args.insert(run.args.end(), sc.args.begin(), sc.args.end());
          run.args.push_back("--policy=" + pol);
          run.args.push_back("--protocol=" + proto);
          run.args.push_back("--seed=" + std::to_string(seed));
          run.scenario = sc.name;
          run.policy = pol;
          run.protocol = proto;
          run.seed = seed;
          run.has_seed = true;
          cfg->runs.push_back(std::move(run));
        }
      }
    }
  }
}

void expand_benches(const std::string& origin, const Json& benches,
                    ExperimentConfig* cfg) {
  if (!benches.is_array()) fail(origin, "benches: expected an array");
  for (const Json& b : benches.items()) {
    if (!b.is_object()) fail(origin, "benches: expected objects");
    check_known_keys(origin, "benches entry", b,
                     {"name", "binary", "args", "optional"});
    const Json* name = b.find("name");
    if (name == nullptr) fail(origin, "benches entry: missing \"name\"");
    RunSpec run;
    run.id = get_string(origin, "bench name", *name);
    check_id(origin, "bench name", run.id);
    run.kind = "bench";
    run.binary = run.id;
    if (const Json* v = b.find("binary")) {
      run.binary = get_string(origin, "bench binary", *v);
    }
    if (const Json* v = b.find("args")) {
      run.args = get_string_array(origin, "bench args", *v);
    }
    if (const Json* v = b.find("optional")) {
      if (!v->is_bool()) fail(origin, "bench optional: expected a boolean");
      run.optional = v->as_bool();
    }
    cfg->runs.push_back(std::move(run));
  }
}

}  // namespace

ExperimentConfig parse_config(const std::string& text,
                              const std::string& origin) {
  const Json doc = Json::parse(text, origin);
  if (!doc.is_object()) fail(origin, "config must be a JSON object");
  check_known_keys(origin, "config", doc,
                   {"name", "out_root", "bin_dir", "jobs", "matrix",
                    "benches"});

  ExperimentConfig cfg;
  const Json* name = doc.find("name");
  if (name == nullptr) fail(origin, "missing \"name\"");
  cfg.name = get_string(origin, "name", *name);
  check_id(origin, "experiment name", cfg.name);

  if (const Json* v = doc.find("out_root")) {
    cfg.out_root = get_string(origin, "out_root", *v);
    if (cfg.out_root.empty()) fail(origin, "out_root must not be empty");
  }
  if (const Json* v = doc.find("bin_dir")) {
    cfg.bin_dir = get_string(origin, "bin_dir", *v);
    if (cfg.bin_dir.empty()) fail(origin, "bin_dir must not be empty");
  }
  if (const Json* v = doc.find("jobs")) {
    cfg.jobs = get_int(origin, "jobs", *v);
    if (cfg.jobs < 1 || cfg.jobs > 256) {
      fail(origin, "jobs must be in [1, 256]");
    }
  }

  if (const Json* matrix = doc.find("matrix")) {
    if (!matrix->is_object()) fail(origin, "matrix: expected an object");
    expand_matrix(origin, *matrix, &cfg);
  }
  if (const Json* benches = doc.find("benches")) {
    expand_benches(origin, *benches, &cfg);
  }
  if (cfg.runs.empty()) {
    fail(origin, "config defines no runs (need \"matrix\" and/or \"benches\")");
  }

  std::set<std::string> seen;
  for (const RunSpec& run : cfg.runs) {
    if (!seen.insert(run.id).second) {
      fail(origin, "duplicate run id \"" + run.id + "\"");
    }
  }
  return cfg;
}

ExperimentConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read config " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_config(ss.str(), path);
}

}  // namespace venn::orchestrator
