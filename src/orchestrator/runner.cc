#include "orchestrator/runner.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "orchestrator/json.h"
#include "util/build_info.h"

namespace venn::orchestrator {

namespace fs = std::filesystem;

namespace {

std::string utc_string(std::time_t t) {
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Json meta_json(const RunSpec& spec, const std::vector<std::string>& cmd,
               std::time_t start_unix, std::time_t end_unix, double wall_s,
               int exit_code) {
  Json meta = Json::object();
  meta.set("run_id", Json::string(spec.id));
  meta.set("kind", Json::string(spec.kind));
  meta.set("binary", Json::string(cmd.front()));
  Json cmd_arr = Json::array();
  for (const std::string& c : cmd) cmd_arr.push_back(Json::string(c));
  meta.set("cmd", std::move(cmd_arr));
  if (spec.kind == "matrix") {
    meta.set("scenario", Json::string(spec.scenario));
    meta.set("policy", Json::string(spec.policy));
    meta.set("protocol", Json::string(spec.protocol));
  }
  if (spec.has_seed) {
    meta.set("seed", Json::number(static_cast<double>(spec.seed)));
  }
  meta.set("build_info", Json::string(build_info_line()));
  meta.set("start_unix", Json::number(static_cast<double>(start_unix)));
  meta.set("end_unix", Json::number(static_cast<double>(end_unix)));
  meta.set("start_utc", Json::string(utc_string(start_unix)));
  meta.set("end_utc", Json::string(utc_string(end_unix)));
  meta.set("wall_time_s", Json::number(wall_s));
  meta.set("exit_code", Json::number(exit_code));
  return meta;
}

// Write-then-rename so --resume never reads a half-written meta.json (an
// unparsable file already falls back to "rerun", but a torn file that
// happens to parse must not be able to record a command it didn't run).
void write_meta(const std::string& run_dir, const Json& meta) {
  const std::string tmp = run_dir + "/meta.json.tmp";
  const std::string final_path = run_dir + "/meta.json";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp);
    out << meta.dump(2) << "\n";
  }
  fs::rename(tmp, final_path);
}

struct ActiveChild {
  std::size_t run_index = 0;
  pid_t pid = -1;
  std::chrono::steady_clock::time_point start;
  std::time_t start_unix = 0;
};

pid_t spawn_child(const std::vector<std::string>& cmd,
                  const std::string& run_dir) {
  const pid_t pid = fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid > 0) return pid;

  // Child. Only async-signal-safe calls between fork and exec.
  const std::string out_path = run_dir + "/stdout.txt";
  const std::string err_path = run_dir + "/stderr.txt";
  const int ofd = open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const int efd = open(err_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (ofd < 0 || efd < 0 || dup2(ofd, STDOUT_FILENO) < 0 ||
      dup2(efd, STDERR_FILENO) < 0 || chdir(run_dir.c_str()) != 0) {
    _exit(127);
  }
  if (ofd > STDERR_FILENO) close(ofd);
  if (efd > STDERR_FILENO) close(efd);

  std::vector<char*> argv;
  argv.reserve(cmd.size() + 1);
  for (const std::string& c : cmd) argv.push_back(const_cast<char*>(c.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  dprintf(STDERR_FILENO, "exec %s failed: %s\n", argv[0],
          std::strerror(errno));
  _exit(127);
}

}  // namespace

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kFailed: return "FAILED";
    case RunStatus::kSkippedResume: return "skipped (resume)";
    case RunStatus::kSkippedMissing: return "skipped (missing binary)";
    case RunStatus::kNotRun: return "not run (fail_fast)";
  }
  return "?";
}

std::string resolve_binary(const ExperimentConfig& cfg, const RunSpec& spec) {
  fs::path bin(spec.binary);
  if (!bin.is_absolute()) bin = fs::path(cfg.bin_dir) / bin;
  return fs::absolute(bin).lexically_normal().string();
}

std::vector<std::string> run_command(const ExperimentConfig& cfg,
                                     const RunSpec& spec) {
  std::vector<std::string> cmd;
  cmd.reserve(spec.args.size() + 1);
  cmd.push_back(resolve_binary(cfg, spec));
  cmd.insert(cmd.end(), spec.args.begin(), spec.args.end());
  return cmd;
}

bool resume_satisfied(const std::string& meta_path,
                      const std::vector<std::string>& cmd) {
  std::ifstream in(meta_path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    const Json meta = Json::parse(ss.str(), meta_path);
    const Json* exit_code = meta.find("exit_code");
    if (exit_code == nullptr || exit_code->as_number() != 0.0) return false;
    const Json* recorded = meta.find("cmd");
    if (recorded == nullptr || !recorded->is_array()) return false;
    const auto& items = recorded->items();
    if (items.size() != cmd.size()) return false;
    for (std::size_t i = 0; i < cmd.size(); ++i) {
      if (!items[i].is_string() || items[i].as_string() != cmd[i]) {
        return false;
      }
    }
    return true;
  } catch (const std::exception&) {
    return false;  // unparsable meta: rerun, never trust it
  }
}

std::string render_plan(const ExperimentConfig& cfg,
                        const RunnerOptions& opts) {
  const fs::path runs_root = fs::absolute(fs::path(cfg.exp_dir()) / "runs");
  std::string out;
  out += "experiment " + cfg.name + ": " + std::to_string(cfg.runs.size()) +
         " runs, jobs=" +
         std::to_string(opts.jobs > 0 ? opts.jobs : cfg.jobs) + "\n";
  for (const RunSpec& spec : cfg.runs) {
    const std::vector<std::string> cmd = run_command(cfg, spec);
    std::string line = "  " + spec.id + ":";
    if (opts.resume &&
        resume_satisfied((runs_root / spec.id / "meta.json").string(), cmd)) {
      line += " [skip, resume]";
    }
    for (const std::string& c : cmd) line += " " + c;
    out += line + "\n";
  }
  return out;
}

RunnerReport execute_runs(const ExperimentConfig& cfg,
                          const RunnerOptions& opts) {
  const int jobs = opts.jobs > 0 ? opts.jobs : cfg.jobs;
  const fs::path runs_root = fs::absolute(fs::path(cfg.exp_dir()) / "runs");
  std::error_code ec;
  fs::create_directories(runs_root, ec);
  if (ec) {
    throw std::runtime_error("cannot create " + runs_root.string() + ": " +
                             ec.message());
  }

  RunnerReport report;
  report.outcomes.resize(cfg.runs.size());
  for (std::size_t i = 0; i < cfg.runs.size(); ++i) {
    report.outcomes[i].spec = cfg.runs[i];
  }

  std::vector<ActiveChild> active;
  std::size_t next = 0;
  bool stop_launching = false;

  const auto log = [&](const char* fmt, const std::string& id,
                       const std::string& detail) {
    if (opts.quiet) return;
    std::printf(fmt, id.c_str(), detail.c_str());
    std::fflush(stdout);
  };

  const auto reap_one = [&]() {
    int status = 0;
    pid_t pid = -1;
    for (;;) {
      pid = waitpid(-1, &status, 0);
      if (pid >= 0) break;
      // A signal (e.g. SIGALRM from a watchdog timer installed by the host
      // process) interrupts the blocking wait; children are still running,
      // so retry instead of aborting the whole matrix.
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("waitpid failed: ") +
                               std::strerror(errno));
    }
    const auto end = std::chrono::steady_clock::now();
    const std::time_t end_unix = std::time(nullptr);
    for (std::size_t a = 0; a < active.size(); ++a) {
      if (active[a].pid != pid) continue;
      const std::size_t idx = active[a].run_index;
      RunOutcome& outcome = report.outcomes[idx];
      int exit_code = 0;
      if (WIFEXITED(status)) {
        exit_code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        exit_code = 128 + WTERMSIG(status);
      }
      outcome.exit_code = exit_code;
      outcome.wall_s =
          std::chrono::duration<double>(end - active[a].start).count();
      outcome.status = exit_code == 0 ? RunStatus::kOk : RunStatus::kFailed;
      write_meta(outcome.run_dir, meta_json(outcome.spec,
                                            run_command(cfg, outcome.spec),
                                            active[a].start_unix, end_unix,
                                            outcome.wall_s, exit_code));
      ++report.executed;
      if (exit_code != 0) {
        ++report.failed;
        if (opts.fail_fast) stop_launching = true;
      }
      {
        char detail[96];
        std::snprintf(detail, sizeof(detail), "%s, exit %d, %.2fs",
                      run_status_name(outcome.status), exit_code,
                      outcome.wall_s);
        log("  [done ] %s (%s)\n", outcome.spec.id, detail);
      }
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(a));
      return;
    }
    // A child we did not spawn (impossible in this single-threaded
    // orchestrator): ignore it.
  };

  while (next < cfg.runs.size() || !active.empty()) {
    while (!stop_launching && next < cfg.runs.size() &&
           active.size() < static_cast<std::size_t>(jobs)) {
      const std::size_t idx = next++;
      const RunSpec& spec = cfg.runs[idx];
      RunOutcome& outcome = report.outcomes[idx];
      const std::vector<std::string> cmd = run_command(cfg, spec);
      const std::string run_dir = (runs_root / spec.id).string();

      if (opts.resume && resume_satisfied(run_dir + "/meta.json", cmd)) {
        outcome.status = RunStatus::kSkippedResume;
        outcome.run_dir = run_dir;
        ++report.skipped;
        log("  [skip ] %s (%s)\n", spec.id, "resume: meta.json up to date");
        continue;
      }
      if (access(cmd.front().c_str(), X_OK) != 0) {
        if (spec.optional) {
          outcome.status = RunStatus::kSkippedMissing;
          ++report.skipped;
          log("  [skip ] %s (%s)\n", spec.id,
              "optional binary not built: " + cmd.front());
          continue;
        }
        fs::create_directories(run_dir);
        std::ofstream(run_dir + "/stderr.txt", std::ios::trunc)
            << "binary not found or not executable: " << cmd.front() << "\n";
        std::ofstream(run_dir + "/stdout.txt", std::ios::trunc);
        const std::time_t now = std::time(nullptr);
        write_meta(run_dir, meta_json(spec, cmd, now, now, 0.0, 127));
        outcome.status = RunStatus::kFailed;
        outcome.exit_code = 127;
        outcome.run_dir = run_dir;
        ++report.executed;
        ++report.failed;
        if (opts.fail_fast) stop_launching = true;
        log("  [FAIL ] %s (%s)\n", spec.id,
            "binary not found: " + cmd.front());
        continue;
      }

      fs::create_directories(run_dir);
      outcome.run_dir = run_dir;
      ActiveChild child;
      child.run_index = idx;
      child.start = std::chrono::steady_clock::now();
      child.start_unix = std::time(nullptr);
      child.pid = spawn_child(cmd, run_dir);
      active.push_back(child);
      log("  [start] %s (%s)\n", spec.id, cmd.front());
    }
    if (!active.empty()) {
      reap_one();
    } else if (stop_launching) {
      break;
    }
  }
  return report;
}

}  // namespace venn::orchestrator
