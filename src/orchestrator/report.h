// Static report generation: one self-contained report.html (inline CSS,
// inline SVG, zero external requests — it renders from a file:// URL on
// an airgapped machine) summarizing an aggregated experiment: status
// tiles, a wall-time bar chart over every run, a mean-JCT-by-policy
// grouped chart per protocol for matrix runs, and the full run table.
#pragma once

#include <string>
#include <vector>

#include "orchestrator/aggregate.h"

namespace venn::orchestrator {

// Renders the report document.
std::string report_html(const std::string& exp_name,
                        const std::vector<RunRecord>& records);

// Writes report_html to <path>; throws std::runtime_error when unwritable.
void write_report_html(const std::string& path, const std::string& exp_name,
                       const std::vector<RunRecord>& records);

}  // namespace venn::orchestrator
