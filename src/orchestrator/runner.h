// Cross-process run execution for venn_bench_orchestrate.
//
// Each RunSpec fork/execs its binary with stdout/stderr captured to
// per-run files under <exp_dir>/runs/<run_id>/, the child chdir'ed into
// the run directory (so bench artifacts like BENCH_hotpath.json land
// beside the captured output), and a meta.json provenance record written
// after the process is reaped: the full command, the orchestrator's
// build-info line, start/end timestamps, wall time and exit code.
// Concurrency is bounded: at most `jobs` children run at once, launched
// in config order and reaped as they finish.
//
// --resume skips a run when its existing meta.json records the SAME
// command with exit code 0 — a stale meta (different command, a previous
// failure, or an unparsable file) reruns. --fail_fast stops launching new
// runs after the first failure (in-flight runs are still reaped and
// recorded). --dry_run is handled by the caller via render_plan.
#pragma once

#include <string>
#include <vector>

#include "orchestrator/config.h"

namespace venn::orchestrator {

struct RunnerOptions {
  int jobs = 0;  // 0: use the config's value
  bool resume = false;
  bool fail_fast = false;
  bool quiet = false;
};

enum class RunStatus {
  kOk,             // exit code 0
  kFailed,         // nonzero exit, signal, or missing required binary
  kSkippedResume,  // --resume found a matching completed meta.json
  kSkippedMissing, // optional bench whose binary is absent
  kNotRun,         // --fail_fast stopped the plan before this run
};

const char* run_status_name(RunStatus s);

struct RunOutcome {
  RunSpec spec;
  RunStatus status = RunStatus::kNotRun;
  int exit_code = 0;    // 128+signal when killed by a signal
  double wall_s = 0.0;  // 0 for skipped / not-run
  std::string run_dir;  // empty when no directory was created
};

struct RunnerReport {
  std::vector<RunOutcome> outcomes;
  std::size_t executed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  bool ok() const { return failed == 0; }
};

// Absolute path of the binary a spec resolves to: specs with an absolute
// binary path are taken as-is, everything else resolves against bin_dir
// (itself made absolute against the current directory).
std::string resolve_binary(const ExperimentConfig& cfg, const RunSpec& spec);

// The full command (argv[0] = resolved binary) a spec executes.
std::vector<std::string> run_command(const ExperimentConfig& cfg,
                                     const RunSpec& spec);

// The --resume skip decision, exposed for tests: true iff `meta_path`
// parses as a meta.json recording exactly `cmd` with exit_code 0.
bool resume_satisfied(const std::string& meta_path,
                      const std::vector<std::string>& cmd);

// Human-readable --dry_run plan: one line per run with its id and full
// command, plus resume decisions when opts.resume is set.
std::string render_plan(const ExperimentConfig& cfg,
                        const RunnerOptions& opts);

// Executes the plan. Creates <exp_dir>/runs/<run_id>/ directories as
// needed; never throws on individual run failure (recorded per outcome) —
// throws std::runtime_error only on orchestrator-level errors (cannot
// create directories, fork failure).
RunnerReport execute_runs(const ExperimentConfig& cfg,
                          const RunnerOptions& opts);

}  // namespace venn::orchestrator
