#include "orchestrator/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <map>
#include <stdexcept>

namespace venn::orchestrator {

namespace {

// Colorblind-safe categorical palette (Okabe–Ito derived); series colors
// cycle through it, failures always render in the alert color.
const char* const kSeriesColors[] = {"#0072b2", "#e69f00", "#009e73",
                                     "#cc79a7", "#56b4e9", "#d55e00"};
constexpr const char* kBarColor = "#0072b2";
constexpr const char* kFailColor = "#d55e00";

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

// Horizontal bar chart: one row per entry, label left, value right.
struct Bar {
  std::string label;
  double value = 0.0;
  const char* color = kBarColor;
};

std::string svg_hbar_chart(const std::vector<Bar>& bars,
                           const std::string& value_format) {
  if (bars.empty()) return "<p class=\"empty\">no data</p>\n";
  const int row_h = 22, label_w = 340, value_w = 90, chart_w = 520;
  const int width = label_w + chart_w + value_w;
  const int height = static_cast<int>(bars.size()) * row_h + 8;
  double max_v = 0.0;
  for (const Bar& b : bars) max_v = std::max(max_v, b.value);
  if (max_v <= 0.0) max_v = 1.0;

  std::string svg = "<svg viewBox=\"0 0 " + std::to_string(width) + " " +
                    std::to_string(height) +
                    "\" role=\"img\" xmlns=\"http://www.w3.org/2000/svg\">\n";
  int y = 4;
  for (const Bar& b : bars) {
    const int w = std::max(
        1, static_cast<int>(std::lround(b.value / max_v * chart_w)));
    svg += "  <text x=\"" + std::to_string(label_w - 8) + "\" y=\"" +
           std::to_string(y + 15) +
           "\" text-anchor=\"end\" class=\"lbl\">" + html_escape(b.label) +
           "</text>\n";
    svg += "  <rect x=\"" + std::to_string(label_w) + "\" y=\"" +
           std::to_string(y + 3) + "\" width=\"" + std::to_string(w) +
           "\" height=\"" + std::to_string(row_h - 8) + "\" fill=\"" +
           b.color + "\"/>\n";
    svg += "  <text x=\"" + std::to_string(label_w + w + 6) + "\" y=\"" +
           std::to_string(y + 15) + "\" class=\"val\">" +
           fmt(value_format.c_str(), b.value) + "</text>\n";
    y += row_h;
  }
  svg += "</svg>\n";
  return svg;
}

std::string wall_time_section(const std::vector<RunRecord>& records) {
  std::vector<Bar> bars;
  bars.reserve(records.size());
  for (const RunRecord& r : records) {
    bars.push_back({r.run_id, r.wall_s,
                    r.exit_code == 0 ? kBarColor : kFailColor});
  }
  std::sort(bars.begin(), bars.end(),
            [](const Bar& a, const Bar& b) { return a.value > b.value; });
  return "<h2>Wall time per run</h2>\n" + svg_hbar_chart(bars, "%.2fs");
}

// Mean avg-JCT by policy, one chart per protocol (matrix runs only,
// averaged over scenarios and seeds).
std::string jct_section(const std::vector<RunRecord>& records) {
  struct Acc {
    double sum = 0.0;
    int n = 0;
  };
  std::map<std::string, std::map<std::string, Acc>> by_protocol;
  for (const RunRecord& r : records) {
    if (r.kind != "matrix" || !r.has_avg_jct || r.exit_code != 0) continue;
    Acc& acc = by_protocol[r.protocol][r.policy];
    acc.sum += r.avg_jct;
    ++acc.n;
  }
  if (by_protocol.empty()) return {};

  std::string out = "<h2>Mean avg JCT by policy (matrix runs)</h2>\n";
  std::size_t color_idx = 0;
  for (const auto& [protocol, policies] : by_protocol) {
    std::vector<Bar> bars;
    const char* color =
        kSeriesColors[color_idx++ % (sizeof(kSeriesColors) /
                                     sizeof(kSeriesColors[0]))];
    for (const auto& [policy, acc] : policies) {
      bars.push_back({policy, acc.sum / acc.n, color});
    }
    std::sort(bars.begin(), bars.end(),
              [](const Bar& a, const Bar& b) { return a.value < b.value; });
    out += "<h3>protocol = " + html_escape(protocol) + "</h3>\n";
    out += svg_hbar_chart(bars, "%.0fs");
  }
  return out;
}

std::string table_section(const std::vector<RunRecord>& records) {
  std::string out =
      "<h2>All runs</h2>\n<table>\n<tr><th>run</th><th>kind</th>"
      "<th>scenario</th><th>policy</th><th>protocol</th><th>seed</th>"
      "<th>exit</th><th>wall (s)</th><th>avg JCT (s)</th>"
      "<th>finished</th></tr>\n";
  for (const RunRecord& r : records) {
    out += "<tr" + std::string(r.exit_code != 0 ? " class=\"fail\"" : "") +
           "><td>" + html_escape(r.run_id) + "</td><td>" +
           html_escape(r.kind) + "</td><td>" + html_escape(r.scenario) +
           "</td><td>" + html_escape(r.policy) + "</td><td>" +
           html_escape(r.protocol) + "</td><td>" +
           (r.has_seed ? std::to_string(r.seed) : "") + "</td><td>" +
           std::to_string(r.exit_code) + "</td><td>" + fmt("%.2f", r.wall_s) +
           "</td><td>" + (r.has_avg_jct ? fmt("%.0f", r.avg_jct) : "") +
           "</td><td>" +
           (r.has_finished ? std::to_string(r.finished_jobs) + "/" +
                                 std::to_string(r.total_jobs)
                           : "") +
           "</td></tr>\n";
  }
  out += "</table>\n";
  return out;
}

}  // namespace

std::string report_html(const std::string& exp_name,
                        const std::vector<RunRecord>& records) {
  std::size_t ok = 0, failed = 0;
  double total_wall = 0.0;
  for (const RunRecord& r : records) {
    (r.exit_code == 0 ? ok : failed) += 1;
    total_wall += r.wall_s;
  }
  const std::string build =
      records.empty() ? std::string{} : records.front().build_info;

  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm);

  std::string html =
      "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      "<title>venn bench report — " + html_escape(exp_name) + "</title>\n"
      "<style>\n"
      "  body { font: 14px/1.5 system-ui, sans-serif; color: #1a1a2e;\n"
      "         max-width: 1100px; margin: 2em auto; padding: 0 1em; }\n"
      "  h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }\n"
      "  h3 { font-size: 0.95em; color: #555; }\n"
      "  .tiles { display: flex; gap: 1em; flex-wrap: wrap; }\n"
      "  .tile { border: 1px solid #d8d8e0; border-radius: 6px;\n"
      "          padding: 0.6em 1.2em; }\n"
      "  .tile b { display: block; font-size: 1.4em; }\n"
      "  .tile.bad b { color: #d55e00; }\n"
      "  svg { width: 100%; height: auto; }\n"
      "  svg .lbl { font: 11px system-ui, sans-serif; fill: #1a1a2e; }\n"
      "  svg .val { font: 11px system-ui, sans-serif; fill: #555; }\n"
      "  table { border-collapse: collapse; width: 100%; }\n"
      "  th, td { border-bottom: 1px solid #e4e4ea; padding: 4px 8px;\n"
      "           text-align: left; font-size: 13px; }\n"
      "  th { border-bottom: 2px solid #b8b8c4; }\n"
      "  tr.fail td { background: #fdeee6; }\n"
      "  .meta, .empty { color: #555; }\n"
      "</style>\n</head>\n<body>\n";
  html += "<h1>venn bench report — " + html_escape(exp_name) + "</h1>\n";
  html += "<p class=\"meta\">generated " + std::string(stamp);
  if (!build.empty()) html += " · " + html_escape(build);
  html += "</p>\n";
  html += "<div class=\"tiles\">\n";
  html += "  <div class=\"tile\"><b>" + std::to_string(records.size()) +
          "</b>runs</div>\n";
  html += "  <div class=\"tile\"><b>" + std::to_string(ok) +
          "</b>succeeded</div>\n";
  html += "  <div class=\"tile" + std::string(failed > 0 ? " bad" : "") +
          "\"><b>" + std::to_string(failed) + "</b>failed</div>\n";
  html += "  <div class=\"tile\"><b>" + fmt("%.1fs", total_wall) +
          "</b>total run wall</div>\n";
  html += "</div>\n";
  html += jct_section(records);
  html += wall_time_section(records);
  html += table_section(records);
  html += "</body>\n</html>\n";
  return html;
}

void write_report_html(const std::string& path, const std::string& exp_name,
                       const std::vector<RunRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << report_html(exp_name, records);
}

}  // namespace venn::orchestrator
