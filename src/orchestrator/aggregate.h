// Aggregation pass: fold every completed run under <exp_dir>/runs/ into
// one flat table (runs.csv), one row per run, merging meta.json
// provenance with headline metrics scraped from the captured stdout
// (venn_sim_cli's "avg JCT <n> s" and "finished <a>/<b>" lines, when
// present). Runs whose meta.json is missing or unparsable are reported as
// malformed rather than silently dropped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace venn::orchestrator {

struct RunRecord {
  std::string run_id;
  std::string kind;  // "matrix" | "bench" | "" (pre-schema meta)
  std::string scenario;
  std::string policy;
  std::string protocol;
  bool has_seed = false;
  std::uint64_t seed = 0;
  std::string binary;
  std::string build_info;
  int exit_code = 0;
  double wall_s = 0.0;
  long long start_unix = 0;
  long long end_unix = 0;
  // Scraped from stdout.txt when the run printed them.
  bool has_avg_jct = false;
  double avg_jct = 0.0;
  bool has_finished = false;
  std::uint64_t finished_jobs = 0;
  std::uint64_t total_jobs = 0;
};

struct AggregateResult {
  std::vector<RunRecord> records;            // sorted by run_id
  std::vector<std::string> malformed_runs;   // run dirs with bad meta.json
};

// Scans <exp_dir>/runs/*/ for meta.json + stdout.txt.
AggregateResult aggregate_runs(const std::string& exp_dir);

// RFC-4180-style CSV (fields quoted when they contain comma/quote/newline);
// empty cells for metrics a run did not report.
std::string runs_csv(const std::vector<RunRecord>& records);

// Writes runs_csv to <path>; throws std::runtime_error when unwritable.
void write_runs_csv(const std::string& path,
                    const std::vector<RunRecord>& records);

}  // namespace venn::orchestrator
