// Experiment configuration for venn_bench_orchestrate.
//
// A config (bench/experiments/*.json) names an output root, a binary
// directory, a bounded process-concurrency default, a
// (scenario × policy × protocol × seed) matrix over one simulator binary,
// and a list of named bench binaries (the per-figure/table artifact
// reproductions). Parsing is strict in the repo's house style: unknown
// keys, wrong types, duplicate run ids and empty matrix axes all throw
// std::invalid_argument naming the offending key — a typo'd config must
// fail loudly before any process is forked.
//
// Schema (all keys optional unless noted):
//   {
//     "name": "paper",                    // required: experiment name
//     "out_root": "bench_runs",           // runs land under <out_root>/<name>/
//     "bin_dir": "build",                 // where binaries live
//     "jobs": 4,                          // max concurrent processes
//     "matrix": {                         // expanded as a cartesian product
//       "binary": "venn_sim_cli",         // required when matrix present
//       "common_args": ["--devices=6000"],
//       "scenarios": [{"name": "weibull", "args": ["--churn=weibull"]}],
//       "policies": ["venn", "fifo"],     // --policy=<p>
//       "protocols": ["sync"],            // --protocol=<p>
//       "seeds": [1, 2]                   // --seed=<s>
//     },
//     "benches": [                        // one run per named binary
//       {"name": "fig03", "binary": "fig03_toy_example",
//        "args": [], "optional": false}
//     ]
//   }
//
// Matrix runs get id "<scenario>-<policy>-<protocol>-s<seed>" and command
//   <bin_dir>/<binary> <common_args> <scenario.args>
//       --policy=<p> --protocol=<proto> --seed=<s>
// Bench runs get id "<name>" and command <bin_dir>/<binary> <args>.
// "optional": true marks a bench whose binary may legitimately be absent
// (e.g. fig10_overhead when google-benchmark is not installed); it is
// skipped instead of failed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace venn::orchestrator {

struct RunSpec {
  std::string id;       // unique, filesystem-safe
  std::string kind;     // "matrix" | "bench"
  std::string binary;   // name, resolved against bin_dir at execution
  std::vector<std::string> args;  // argv[1..]
  // Matrix provenance tags (empty / unset for bench runs).
  std::string scenario;
  std::string policy;
  std::string protocol;
  std::uint64_t seed = 0;
  bool has_seed = false;
  bool optional = false;
};

struct ExperimentConfig {
  std::string name;
  std::string out_root = "bench_runs";
  std::string bin_dir = "build";
  int jobs = 2;
  std::vector<RunSpec> runs;  // matrix expansion first, then benches

  // <out_root>/<name> — every run directory and aggregate lives below it.
  std::string exp_dir() const { return out_root + "/" + name; }
};

// Parses and validates a config document. `origin` names the source in
// error messages (usually the file path).
ExperimentConfig parse_config(const std::string& text,
                              const std::string& origin);

// Reads the file and delegates to parse_config; throws std::runtime_error
// when the file cannot be read.
ExperimentConfig load_config(const std::string& path);

}  // namespace venn::orchestrator
