// Minimal JSON value + recursive-descent parser + serializer for the
// experiment orchestrator (configs, per-run meta.json provenance). The
// repo carries no external dependencies, so this implements the subset of
// RFC 8259 the orchestrator needs: all six value types, string escapes
// (incl. \uXXXX to UTF-8), and strict errors that name the byte offset.
//
// Objects preserve insertion order (a vector of pairs, not a map) so
// serialized meta.json files are stable and diffable, and duplicate keys
// are rejected at parse time — a config with two "jobs" keys is a typo,
// not a last-writer-wins.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace venn::orchestrator {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  // Parses exactly one JSON document; trailing non-whitespace is an error.
  // Throws std::invalid_argument naming `origin` and the byte offset.
  static Json parse(const std::string& text,
                    const std::string& origin = "json");

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Checked accessors: throw std::invalid_argument on type mismatch (the
  // config layer turns these into "key X: expected array" style errors).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;                 // array
  const std::vector<std::pair<std::string, Json>>& members() const;  // object

  // Object lookup; nullptr when absent (never for non-objects — throws).
  const Json* find(const std::string& key) const;

  // Mutators used when assembling meta.json / reports.
  void push_back(Json v);                      // array
  void set(const std::string& key, Json v);    // object (append or replace)

  // Canonical serialization. indent=0 → compact one-line; indent>0 →
  // pretty-printed with that many spaces per level. Numbers print via
  // %.17g trimmed to the shortest round-trip form ("1" not "1.0000...").
  std::string dump(int indent = 0) const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  void dump_to(std::string* out, int indent, int depth) const;
};

// Serializes a string with JSON escaping, including the surrounding
// quotes. Exposed for the report writer's hand-assembled fragments.
std::string json_quote(const std::string& s);

}  // namespace venn::orchestrator
