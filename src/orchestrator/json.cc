#include "orchestrator/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace venn::orchestrator {

namespace {

struct Parser {
  const std::string& text;
  const std::string& origin;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(origin + ": " + what + " at byte " +
                                std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text[pos] + "'");
    }
    ++pos;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': parse_literal("true"); return Json::boolean(true);
      case 'f': parse_literal("false"); return Json::boolean(false);
      case 'n': parse_literal("null"); return Json();
      default: return parse_number();
    }
  }

  void parse_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text.compare(pos, n, lit) != 0) fail("invalid literal");
    pos += n;
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) fail("expected a value");
    const std::string token = text.substr(start, pos - start);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(v)) {
      pos = start;
      fail("bad number \"" + token + "\"");
    }
    return Json::number(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(&out); break;
        default: pos -= 2; fail("unknown escape");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos >= text.size()) fail("truncated \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else { --pos; fail("bad \\u escape digit"); }
    }
    return v;
  }

  void append_unicode_escape(std::string* out) {
    unsigned cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
      if (pos + 1 >= text.size() || text[pos] != '\\' || text[pos + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos += 2;
      const unsigned lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos; return arr; }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') { ++pos; continue; }
      if (c == ']') { ++pos; return arr; }
      fail("expected ',' or ']' in array");
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos; return obj; }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      const std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') { ++pos; continue; }
      if (c == '}') { ++pos; return obj; }
      fail("expected ',' or '}' in object");
    }
  }
};

std::string format_number(double v) {
  // Integers (the common case: seeds, exit codes, unix times) print
  // without a fractional part; everything else gets the shortest %.17g
  // round-trip spelling.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::parse(const std::string& text, const std::string& origin) {
  Parser p{text, origin};
  Json v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing content after document");
  return v;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::invalid_argument("expected a boolean");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw std::invalid_argument("expected a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::invalid_argument("expected a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw std::invalid_argument("expected an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) throw std::invalid_argument("expected an object");
  return obj_;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) throw std::invalid_argument("expected an array");
  arr_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject) throw std::invalid_argument("expected an object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: *out += format_number(num_); break;
    case Type::kString: *out += json_quote(str_); break;
    case Type::kArray: {
      if (arr_.empty()) { *out += "[]"; break; }
      out->push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) { *out += "{}"; break; }
      out->push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        *out += json_quote(obj_[i].first);
        *out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

}  // namespace venn::orchestrator
