#include "orchestrator/aggregate.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "orchestrator/json.h"
#include "orchestrator/metrics.h"

namespace venn::orchestrator {

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string meta_string(const Json& meta, const std::string& key) {
  const Json* v = meta.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::string{};
}

double meta_number(const Json& meta, const std::string& key, double fallback) {
  const Json* v = meta.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool parse_record(const fs::path& run_dir, RunRecord* out) {
  const std::string meta_text = read_file(run_dir / "meta.json");
  if (meta_text.empty()) return false;
  Json meta;
  try {
    meta = Json::parse(meta_text, (run_dir / "meta.json").string());
  } catch (const std::exception&) {
    return false;
  }
  if (!meta.is_object()) return false;

  out->run_id = meta_string(meta, "run_id");
  if (out->run_id.empty()) out->run_id = run_dir.filename().string();
  out->kind = meta_string(meta, "kind");
  out->scenario = meta_string(meta, "scenario");
  out->policy = meta_string(meta, "policy");
  out->protocol = meta_string(meta, "protocol");
  out->binary = meta_string(meta, "binary");
  out->build_info = meta_string(meta, "build_info");
  if (const Json* seed = meta.find("seed"); seed != nullptr && seed->is_number()) {
    out->has_seed = true;
    out->seed = static_cast<std::uint64_t>(seed->as_number());
  }
  out->exit_code = static_cast<int>(meta_number(meta, "exit_code", -1.0));
  out->wall_s = meta_number(meta, "wall_time_s", 0.0);
  out->start_unix = static_cast<long long>(meta_number(meta, "start_unix", 0.0));
  out->end_unix = static_cast<long long>(meta_number(meta, "end_unix", 0.0));

  const std::string stdout_text = read_file(run_dir / "stdout.txt");
  if (!stdout_text.empty()) {
    out->has_avg_jct =
        scrape_labeled_double(stdout_text, "avg JCT", &out->avg_jct);
    out->has_finished = scrape_labeled_fraction(
        stdout_text, "finished", &out->finished_jobs, &out->total_jobs);
  }
  return true;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

AggregateResult aggregate_runs(const std::string& exp_dir) {
  AggregateResult result;
  const fs::path runs_root = fs::path(exp_dir) / "runs";
  std::error_code ec;
  if (!fs::is_directory(runs_root, ec)) return result;
  for (const auto& entry : fs::directory_iterator(runs_root)) {
    if (!entry.is_directory()) continue;
    RunRecord record;
    if (parse_record(entry.path(), &record)) {
      result.records.push_back(std::move(record));
    } else {
      result.malformed_runs.push_back(entry.path().string());
    }
  }
  std::sort(result.records.begin(), result.records.end(),
            [](const RunRecord& a, const RunRecord& b) {
              return a.run_id < b.run_id;
            });
  std::sort(result.malformed_runs.begin(), result.malformed_runs.end());
  return result;
}

std::string runs_csv(const std::vector<RunRecord>& records) {
  std::string out =
      "run_id,kind,scenario,policy,protocol,seed,binary,exit_code,"
      "wall_time_s,start_unix,end_unix,avg_jct_s,finished_jobs,total_jobs,"
      "build_info\n";
  char buf[64];
  for (const RunRecord& r : records) {
    out += csv_field(r.run_id) + "," + csv_field(r.kind) + "," +
           csv_field(r.scenario) + "," + csv_field(r.policy) + "," +
           csv_field(r.protocol) + ",";
    if (r.has_seed) out += std::to_string(r.seed);
    out += "," + csv_field(r.binary) + "," + std::to_string(r.exit_code) + ",";
    std::snprintf(buf, sizeof(buf), "%.6f", r.wall_s);
    out += buf;
    out += "," + std::to_string(r.start_unix) + "," +
           std::to_string(r.end_unix) + ",";
    if (r.has_avg_jct) {
      std::snprintf(buf, sizeof(buf), "%.6f", r.avg_jct);
      out += buf;
    }
    out += ",";
    if (r.has_finished) {
      out += std::to_string(r.finished_jobs) + "," +
             std::to_string(r.total_jobs);
    } else {
      out += ",";
    }
    out += "," + csv_field(r.build_info) + "\n";
  }
  return out;
}

void write_runs_csv(const std::string& path,
                    const std::vector<RunRecord>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << runs_csv(records);
}

}  // namespace venn::orchestrator
