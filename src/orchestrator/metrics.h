// Text-scraping helpers shared by the orchestrator's aggregation pass and
// the bench binaries' baseline gates.
//
// Two families:
//  - find_cell_metric: lookup into the repo's own flat JSON bench output
//    (one cell object per line, e.g. BENCH_hotpath.json). The search for
//    the metric key is BOUNDED to the matched cell object — this is the
//    fix for a real bug where a cell missing the key silently read the
//    NEXT cell's value and gated a regression verdict against the wrong
//    number (bench/hotpath_index.cc pre-PR 9).
//  - scrape_labeled_*: pull "label <number>" / "label <a>/<b>" values out
//    of captured run stdout (e.g. venn_sim_cli's "avg JCT %.0f s" and
//    "finished %zu/%zu" lines) for runs.csv.
#pragma once

#include <cstdint>
#include <string>

namespace venn::orchestrator {

// Finds the first occurrence of `cell_needle` (the cell's identifying
// prefix, e.g. "\"devices\": 1000, \"jobs\": 4, \"mode\": \"index\""),
// then reads the number after `"<metric_key>": ` — but only within that
// cell's object (up to the first '}' after the needle). Returns false
// when the cell or the key is absent FROM THAT CELL, or when the value
// after the key is not a number.
bool find_cell_metric(const std::string& text, const std::string& cell_needle,
                      const std::string& metric_key, double* out);

// Finds the first occurrence of `label` and parses the number that
// follows it (skipping spaces). Returns false when the label is absent or
// not followed by a number.
bool scrape_labeled_double(const std::string& text, const std::string& label,
                           double* out);

// Finds the first occurrence of `label` and parses "<num>/<den>" after it
// (skipping spaces), e.g. "finished 12/30".
bool scrape_labeled_fraction(const std::string& text, const std::string& label,
                             std::uint64_t* num, std::uint64_t* den);

}  // namespace venn::orchestrator
