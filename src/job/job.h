// Runtime state of one CL job.
//
// Tracks round progress, the currently open resource request (at most one —
// the paper studies synchronous CL jobs, §5.1, and notes the approach
// extends to asynchronous jobs since decisions depend only on remaining
// demand), and per-round metrics feeding JCT accounting.
#pragma once

#include <optional>
#include <stdexcept>
#include <vector>

#include "job/request.h"
#include "trace/job_trace.h"
#include "util/ids.h"

namespace venn {

struct RoundStats {
  int round = 0;
  SimTime scheduling_delay = 0.0;
  SimTime response_collection = 0.0;
  int aborts = 0;  // aborted attempts before this round succeeded
};

class Job {
 public:
  Job(JobId id, trace::JobSpec spec) : id_(id), spec_(std::move(spec)) {}

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const trace::JobSpec& spec() const { return spec_; }

  [[nodiscard]] int completed_rounds() const { return completed_rounds_; }
  [[nodiscard]] bool finished() const {
    return completed_rounds_ >= spec_.rounds;
  }

  // Remaining service in device-rounds: the SRSF priority metric and the
  // "total remaining demand" variant of the intra-group ordering (§4.2.1).
  [[nodiscard]] double remaining_service() const {
    return static_cast<double>(spec_.rounds - completed_rounds_) *
           static_cast<double>(spec_.demand);
  }

  [[nodiscard]] const std::optional<RoundRequest>& request() const {
    return request_;
  }
  [[nodiscard]] RoundRequest& mutable_request() {
    if (!request_) throw std::logic_error("no open request");
    return *request_;
  }

  // Opens a request for the next round (or a retry of the current round
  // after an abort). Exactly one request may be open at a time.
  // `selection_target` is the number of devices to acquire and
  // `commit_threshold` the responses at which the round commits — both come
  // from the round protocol; negative values keep the paper's synchronous
  // defaults (acquire D, commit at ceil(0.8 x D)).
  RoundRequest& open_request(RequestId rid, SimTime now,
                             int selection_target = -1,
                             int commit_threshold = -1);

  // Round attempt aborted: drop the request, remember the abort.
  void abort_request();

  // Round succeeded: record stats, close the request.
  void complete_round(SimTime now);

  // Buffered-aggregation commit (async protocols): record the round with
  // response_collection = time since the previous commit (or since the
  // request opened), advance the request's round counter in place, reset
  // its response count, and KEEP the request open — in-flight devices keep
  // counting toward later commits. Closes the request only when this commit
  // was the job's last round.
  void commit_round_buffered(SimTime now);

  // Timestamp the current buffered round started accumulating responses.
  [[nodiscard]] SimTime buffer_epoch() const { return buffer_epoch_; }

  [[nodiscard]] const std::vector<RoundStats>& round_stats() const {
    return stats_;
  }
  [[nodiscard]] int total_aborts() const { return total_aborts_; }
  // Aborts of the round currently in flight (state-snapshot surface).
  [[nodiscard]] int pending_aborts() const { return pending_aborts_; }

  [[nodiscard]] SimTime completion_time() const { return completion_time_; }
  void set_completion_time(SimTime t) { completion_time_ = t; }
  [[nodiscard]] bool completion_recorded() const {
    return completion_time_ >= 0.0;
  }

  // Job completion time: arrival -> last round completed.
  [[nodiscard]] SimTime jct() const {
    if (!completion_recorded()) throw std::logic_error("job not finished");
    return completion_time_ - spec_.arrival;
  }

 private:
  JobId id_;
  trace::JobSpec spec_;
  std::optional<RoundRequest> request_;
  SimTime buffer_epoch_ = 0.0;  // start of the current buffered round
  int completed_rounds_ = 0;
  int pending_aborts_ = 0;  // aborts of the round currently in flight
  int total_aborts_ = 0;
  std::vector<RoundStats> stats_;
  SimTime completion_time_ = -1.0;
};

}  // namespace venn
