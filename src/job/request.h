// Per-round resource request lifecycle.
//
// A CL job issues one resource request per training round (paper Fig. 6,
// step 0), asking for `demand` devices. The request is *pending* until the
// last needed device is assigned (that span is the scheduling delay of
// Fig. 1), then *allocated* while responses stream in. Under the default
// synchronous protocol the round succeeds once 80% of the target
// participants report (paper §5.1) and aborts if the reporting deadline
// passes first, in which case the job resubmits.
//
// The round protocol (src/protocol/) parameterizes this lifecycle:
// `demand` is the protocol's *selection target* (over-selection requests
// more devices than the participant target `base_demand`), the commit
// threshold is `target_responses`, and continuous-admission protocols
// (buffered aggregation) flip an allocated request back to kPending as
// responses free their slots, keeping one long-lived request per job.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/ids.h"

namespace venn {

enum class RequestState {
  kPending,    // still acquiring devices (or re-acquiring a freed slot)
  kAllocated,  // selection target assigned; collecting responses
  kCompleted,  // commit threshold met
  kAborted,    // reporting deadline passed below the commit threshold
};

// Fraction of the target participants that must report for a round to
// succeed (paper §5.1: "a minimum of 80% target participants").
inline constexpr double kReportFraction = 0.8;

// Responses required to commit a round over participant target `demand` at
// report fraction `fraction`: ceil(fraction x D), at least 1. The single
// authoritative spelling of the rule — RoundRequest::needed_responses and
// the sync/overcommit protocols must agree bit for bit (the epsilon guards
// exact multiples against ceil'ing one too high), and byte-identical sync
// replay depends on that agreement.
[[nodiscard]] inline int report_threshold(double fraction, int demand) {
  return std::max(1, static_cast<int>(std::ceil(fraction * demand - 1e-9)));
}

struct RoundRequest {
  RequestId id;
  JobId job;
  int round = 0;   // zero-based round index this request serves (advanced
                   // in place by buffered-aggregation commits)
  int demand = 0;  // devices to acquire (the protocol's selection target;
                   // equals the job's participant target D under sync —
                   // the job's spec keeps D itself)
  int target_responses = 0;  // commit threshold (0 = derive the §5.1
                             // default from `demand`, see needed_responses)

  int assigned = 0;   // devices currently assigned (failures decrement
                      // while pending; continuous-admission protocols also
                      // decrement on response)
  int responses = 0;  // successful reports received (reset per buffered
                      // commit)
  int failures = 0;   // devices that died before reporting

  SimTime submitted = 0.0;
  SimTime fully_allocated = -1.0;  // set when assigned first reaches demand
  SimTime completed = -1.0;        // set on completion
  SimTime deadline = 0.0;          // reporting deadline length (from full
                                   // allocation, or — for protocols that
                                   // commit while pending — from the first
                                   // instant a committable cohort is in
                                   // flight)
  bool deadline_armed = false;     // the deadline event exists (armed once)
  RequestState state = RequestState::kPending;

  // Number of responses required for the round to commit. Protocol-opened
  // requests carry the threshold explicitly; a raw request (tests, legacy
  // construction) falls back to the §5.1 default of ceil(0.8 * D).
  [[nodiscard]] int needed_responses() const {
    if (target_responses > 0) return target_responses;
    return report_threshold(kReportFraction, demand);
  }

  [[nodiscard]] int remaining_demand() const { return demand - assigned; }

  [[nodiscard]] bool wants_devices() const {
    return state == RequestState::kPending && remaining_demand() > 0;
  }

  // Scheduling delay (valid once fully allocated).
  [[nodiscard]] SimTime scheduling_delay() const {
    return fully_allocated - submitted;
  }
  // Response collection time (valid once completed).
  [[nodiscard]] SimTime response_collection_time() const {
    return completed - fully_allocated;
  }
};

}  // namespace venn
