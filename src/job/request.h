// Per-round resource request lifecycle.
//
// A CL job issues one resource request per training round (paper Fig. 6,
// step 0), asking for `demand` devices. The request is *pending* until the
// last needed device is assigned (that span is the scheduling delay of
// Fig. 1), then *allocated* while responses stream in. The round succeeds
// once 80% of the target participants report (paper §5.1) and aborts if the
// reporting deadline passes first, in which case the job resubmits.
#pragma once

#include <cmath>

#include "util/ids.h"

namespace venn {

enum class RequestState {
  kPending,    // still acquiring devices
  kAllocated,  // all devices assigned; collecting responses
  kCompleted,  // >= 80% responses received
  kAborted,    // deadline passed with < 80% responses
};

// Fraction of the target participants that must report for a round to
// succeed (paper §5.1: "a minimum of 80% target participants").
inline constexpr double kReportFraction = 0.8;

struct RoundRequest {
  RequestId id;
  JobId job;
  int round = 0;   // zero-based round index this request serves
  int demand = 0;  // devices needed (D)

  int assigned = 0;   // devices currently assigned (failures decrement
                      // while pending)
  int responses = 0;  // successful reports received
  int failures = 0;   // devices that died before reporting

  SimTime submitted = 0.0;
  SimTime fully_allocated = -1.0;  // set when assigned first reaches demand
  SimTime completed = -1.0;        // set on completion
  SimTime deadline = 0.0;          // reporting deadline length (from full
                                   // allocation)
  RequestState state = RequestState::kPending;

  // Number of responses required for success: ceil(0.8 * D), at least 1.
  [[nodiscard]] int needed_responses() const {
    return std::max(1, static_cast<int>(
                           std::ceil(kReportFraction * demand - 1e-9)));
  }

  [[nodiscard]] int remaining_demand() const { return demand - assigned; }

  [[nodiscard]] bool wants_devices() const {
    return state == RequestState::kPending && remaining_demand() > 0;
  }

  // Scheduling delay (valid once fully allocated).
  [[nodiscard]] SimTime scheduling_delay() const {
    return fully_allocated - submitted;
  }
  // Response collection time (valid once completed).
  [[nodiscard]] SimTime response_collection_time() const {
    return completed - fully_allocated;
  }
};

}  // namespace venn
