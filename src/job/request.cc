#include "job/request.h"

// RoundRequest is a plain aggregate; logic lives inline in the header. This
// translation unit exists so the module has a home for future out-of-line
// helpers and to keep one .cc per header in the build.
namespace venn {}
