#include "job/job.h"

namespace venn {

RoundRequest& Job::open_request(RequestId rid, SimTime now) {
  if (request_ && request_->state != RequestState::kAborted &&
      request_->state != RequestState::kCompleted) {
    throw std::logic_error("Job::open_request: a request is already open");
  }
  if (finished()) throw std::logic_error("Job::open_request: job finished");
  RoundRequest r;
  r.id = rid;
  r.job = id_;
  r.round = completed_rounds_;
  r.demand = spec_.demand;
  r.submitted = now;
  r.deadline = spec_.deadline_s;
  request_ = r;
  return *request_;
}

void Job::abort_request() {
  if (!request_) throw std::logic_error("Job::abort_request: no request");
  request_->state = RequestState::kAborted;
  ++pending_aborts_;
  ++total_aborts_;
}

void Job::complete_round(SimTime now) {
  if (!request_) throw std::logic_error("Job::complete_round: no request");
  RoundRequest& r = *request_;
  r.completed = now;
  r.state = RequestState::kCompleted;
  stats_.push_back({r.round, r.scheduling_delay(), r.response_collection_time(),
                    pending_aborts_});
  pending_aborts_ = 0;
  ++completed_rounds_;
  request_.reset();
}

}  // namespace venn
