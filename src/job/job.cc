#include "job/job.h"

namespace venn {

RoundRequest& Job::open_request(RequestId rid, SimTime now,
                                int selection_target, int commit_threshold) {
  if (request_ && request_->state != RequestState::kAborted &&
      request_->state != RequestState::kCompleted) {
    throw std::logic_error("Job::open_request: a request is already open");
  }
  if (finished()) throw std::logic_error("Job::open_request: job finished");
  RoundRequest r;
  r.id = rid;
  r.job = id_;
  r.round = completed_rounds_;
  r.demand = selection_target > 0 ? selection_target : spec_.demand;
  r.target_responses = commit_threshold > 0 ? commit_threshold : 0;
  r.submitted = now;
  r.deadline = spec_.deadline_s;
  request_ = r;
  buffer_epoch_ = now;
  return *request_;
}

void Job::abort_request() {
  if (!request_) throw std::logic_error("Job::abort_request: no request");
  request_->state = RequestState::kAborted;
  ++pending_aborts_;
  ++total_aborts_;
}

void Job::complete_round(SimTime now) {
  if (!request_) throw std::logic_error("Job::complete_round: no request");
  RoundRequest& r = *request_;
  r.completed = now;
  r.state = RequestState::kCompleted;
  stats_.push_back({r.round, r.scheduling_delay(), r.response_collection_time(),
                    pending_aborts_});
  pending_aborts_ = 0;
  ++completed_rounds_;
  request_.reset();
}

void Job::commit_round_buffered(SimTime now) {
  if (!request_) {
    throw std::logic_error("Job::commit_round_buffered: no request");
  }
  if (finished()) {
    throw std::logic_error("Job::commit_round_buffered: job finished");
  }
  RoundRequest& r = *request_;
  // Buffered rounds have no per-round allocation phase: the scheduling
  // delay is folded into the inter-commit span (time to fill the buffer).
  stats_.push_back({r.round, 0.0, now - buffer_epoch_, pending_aborts_});
  pending_aborts_ = 0;
  ++completed_rounds_;
  buffer_epoch_ = now;
  r.round = completed_rounds_;
  r.responses = 0;
  if (finished()) {
    r.completed = now;
    r.state = RequestState::kCompleted;
    request_.reset();
  }
}

}  // namespace venn
