// SweepRunner: a (scenario × policy × seed) grid on a thread pool.
//
// Multi-policy benches used to run cells one by one; the sweep runner
// executes the full grid concurrently while keeping the results
// deterministic: every cell derives its seeds from (grid seed, stream tag)
// via Rng::derive, builds its own inputs, and runs in isolation, so the
// output is byte-identical whether the pool has 1 thread or N. Within one
// (scenario, seed) pair every policy replays the identical trace (inputs
// are a pure function of the scenario and seed), preserving the paper's
// paired-comparison methodology.
#pragma once

#include <cstdint>
#include <vector>

#include "api/builder.h"
#include "api/scenario.h"

namespace venn::api {

struct SweepSpec {
  std::vector<ScenarioSpec> scenarios;
  std::vector<PolicySpec> policies;
  std::vector<std::uint64_t> seeds;  // one grid axis; cells reuse
                                     // scenario.seed if this is empty

  [[nodiscard]] std::size_t num_cells() const {
    return scenarios.size() * policies.size() *
           (seeds.empty() ? 1 : seeds.size());
  }
};

struct SweepCell {
  std::size_t scenario_index = 0;
  std::size_t policy_index = 0;
  std::size_t seed_index = 0;
  std::uint64_t seed = 0;  // the scenario seed this cell ran with
  RunResult result;
};

class SweepRunner {
 public:
  // `num_threads` = 0 picks std::thread::hardware_concurrency().
  explicit SweepRunner(std::size_t num_threads = 0);

  // Runs every cell; the returned vector is ordered scenario-major, then
  // policy, then seed — independent of thread interleaving. Exceptions from
  // a cell (e.g. an unknown policy name) are rethrown after the pool joins.
  [[nodiscard]] std::vector<SweepCell> run(const SweepSpec& spec) const;

  // Index of a cell in the run() output.
  [[nodiscard]] static std::size_t cell_index(const SweepSpec& spec,
                                              std::size_t scenario_idx,
                                              std::size_t policy_idx,
                                              std::size_t seed_idx);

 private:
  std::size_t num_threads_;
};

}  // namespace venn::api
