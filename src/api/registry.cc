#include "api/registry.h"

#include <stdexcept>

#include "api/parse.h"
#include "scheduler/fifo_sched.h"
#include "scheduler/random_sched.h"
#include "scheduler/srsf_sched.h"

namespace venn::api {

std::string PolicyParams::str(const std::string& key,
                              const std::string& def) const {
  auto it = extra.find(key);
  return it == extra.end() ? def : it->second;
}

long PolicyParams::integer(const std::string& key, long def) const {
  auto it = extra.find(key);
  if (it == extra.end()) return def;
  return internal::parse_long("param." + key, it->second);
}

double PolicyParams::real(const std::string& key, double def) const {
  auto it = extra.find(key);
  if (it == extra.end()) return def;
  return internal::parse_double("param." + key, it->second);
}

namespace {

std::unique_ptr<Scheduler> make_venn(VennConfig cfg, bool scheduling,
                                     bool matching, std::uint64_t seed) {
  cfg.enable_scheduling = scheduling;
  cfg.enable_matching = matching;
  return std::make_unique<VennScheduler>(cfg, Rng(seed));
}

void register_builtins(PolicyRegistry& reg) {
  reg.register_policy(
      "random", [](const PolicyParams&, std::uint64_t seed) {
        return std::make_unique<RandomScheduler>(Rng(seed));
      });
  reg.register_policy("fifo", [](const PolicyParams&, std::uint64_t) {
    return std::make_unique<FifoScheduler>();
  });
  reg.register_policy("srsf", [](const PolicyParams&, std::uint64_t) {
    return std::make_unique<SrsfScheduler>();
  });
  reg.register_policy("venn", [](const PolicyParams& p, std::uint64_t seed) {
    return make_venn(p.venn, true, true, seed);
  });
  reg.register_policy(
      "venn-nosched", [](const PolicyParams& p, std::uint64_t seed) {
        return make_venn(p.venn, false, true, seed);
      });
  reg.register_policy(
      "venn-nomatch", [](const PolicyParams& p, std::uint64_t seed) {
        return make_venn(p.venn, true, false, seed);
      });
}

}  // namespace

PolicyRegistry& PolicyRegistry::instance() {
  // Leaked singleton, bootstrapped with the built-ins on first use so that
  // namespace-scope PolicyRegistration objects in other translation units
  // see a fully initialized registry regardless of static-init order.
  static PolicyRegistry* reg = [] {
    auto* r = new PolicyRegistry;
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void PolicyRegistry::register_policy(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("register_policy: empty policy name");
  }
  if (!factory) {
    throw std::invalid_argument("register_policy: null factory for " + name);
  }
  const auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    throw std::invalid_argument("register_policy: duplicate policy name \"" +
                                it->first + "\"");
  }
}

bool PolicyRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::unique_ptr<Scheduler> PolicyRegistry::create(const std::string& name,
                                                  const PolicyParams& params,
                                                  std::uint64_t seed) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string msg = "unknown policy \"" + name + "\"; registered:";
    for (const auto& [known, _] : factories_) msg += " " + known;
    throw std::invalid_argument(msg);
  }
  auto sched = it->second(params, seed);
  if (!sched) {
    throw std::logic_error("policy factory \"" + name + "\" returned null");
  }
  return sched;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

}  // namespace venn::api
