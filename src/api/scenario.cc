#include "api/scenario.h"

#include <cstdio>
#include <stdexcept>

#include "api/parse.h"
#include "protocol/registry.h"

namespace venn::api {

using internal::parse_double;
using internal::parse_int;
using internal::parse_long;
using internal::parse_size;
using internal::parse_u64;

trace::Workload parse_workload(const std::string& s) {
  const auto w = trace::workload_from_name(s);
  if (!w) {
    throw std::invalid_argument("unknown workload \"" + s +
                                "\" (even|small|large|low|high)");
  }
  return *w;
}

std::optional<trace::BiasedWorkload> parse_bias(const std::string& s) {
  if (s == "none") return std::nullopt;
  if (s == "general") return trace::BiasedWorkload::kGeneral;
  if (s == "compute") return trace::BiasedWorkload::kComputeHeavy;
  if (s == "memory") return trace::BiasedWorkload::kMemoryHeavy;
  if (s == "resource") return trace::BiasedWorkload::kResourceHeavy;
  throw std::invalid_argument(
      "unknown bias \"" + s + "\" (general|compute|memory|resource|none)");
}

bool ScenarioSpec::try_set(const std::string& key, const std::string& value) {
  if (key == "name") {
    name = value;
  } else if (key == "seed") {
    seed = parse_u64(key, value);
  } else if (key == "devices") {
    num_devices = parse_size(key, value);
  } else if (key == "jobs") {
    num_jobs = parse_size(key, value);
  } else if (key == "workload") {
    workload = parse_workload(value);
  } else if (key == "bias") {
    bias = parse_bias(value);
  } else if (key == "horizon-days") {
    horizon = parse_double(key, value) * kDay;
  } else if (key == "horizon-s") {
    // Exact spelling (raw seconds, no unit conversion): the one to_kv
    // emits, so a serialized horizon round-trips bit-for-bit.
    horizon = parse_double(key, value);
  } else if (key == "min-rounds") {
    job_trace.min_rounds = parse_int(key, value);
  } else if (key == "max-rounds") {
    job_trace.max_rounds = parse_int(key, value);
  } else if (key == "min-demand") {
    job_trace.min_demand = parse_int(key, value);
  } else if (key == "max-demand") {
    job_trace.max_demand = parse_int(key, value);
  } else if (key == "interarrival-min") {
    job_trace.mean_interarrival = parse_double(key, value) * kMinute;
  } else if (key == "interarrival-s") {
    job_trace.mean_interarrival = parse_double(key, value);  // exact
  } else if (key == "base-trace") {
    job_trace.base_trace_size = parse_size(key, value);
  } else if (key == "task-s") {
    job_trace.nominal_task_s = parse_double(key, value);
  } else if (key == "task-cv") {
    job_trace.task_cv = parse_double(key, value);
  } else if (key == "arrival") {
    (void)workload::arrival_registry().keys(value);  // throws on unknown name
    arrival_gen.name = value;
  } else if (key == "mix") {
    (void)workload::mix_registry().keys(value);  // throws on unknown name
    mix_gen.name = value;
  } else if (key == "churn") {
    (void)workload::churn_registry().keys(value);  // throws on unknown name
    churn_gen.name = value;
  } else if (key == "protocol") {
    (void)protocol::protocol_registry().keys(value);  // throws on unknown
    if (protocol_gen.configured() && protocol_gen.name != value) {
      // Overrides accumulate from several sources (CLI flags, sweep
      // grids, config files); two different aggregation regimes in one
      // scenario is a conflict, not a last-writer-wins.
      throw std::invalid_argument("conflicting values for protocol: \"" +
                                  protocol_gen.name + "\" vs \"" + value +
                                  "\"");
    }
    protocol_gen.name = value;
  } else if (key.starts_with("arrival.")) {
    arrival_gen.params.kv[key.substr(8)] = value;
  } else if (key.starts_with("mix.")) {
    mix_gen.params.kv[key.substr(4)] = value;
  } else if (key.starts_with("churn.")) {
    churn_gen.params.kv[key.substr(6)] = value;
  } else if (key.starts_with("protocol.")) {
    protocol_gen.params.kv[key.substr(9)] = value;
  } else if (key == "open-loop") {
    open_loop = parse_long(key, value) != 0;
  } else if (key == "stream") {
    streaming = parse_long(key, value) != 0;
  } else if (key == "index") {
    use_index = parse_long(key, value) != 0;
  } else if (key == "shards") {
    const std::size_t n = parse_size(key, value);
    if (n < 1 || n > 64) {
      throw std::invalid_argument("shards must be in [1, 64], got \"" + value +
                                  "\"");
    }
    shards = n;
  } else if (key == "topology") {
    if (value != "flat" && value != "hier") {
      throw std::invalid_argument("unknown topology \"" + value +
                                  "\" (flat|hier)");
    }
    if (!topology.empty() && topology != value) {
      // Same rule as `protocol=`: two different coordination topologies in
      // one scenario is a conflict, not a last-writer-wins.
      throw std::invalid_argument("conflicting values for topology: \"" +
                                  topology + "\" vs \"" + value + "\"");
    }
    topology = value;
  } else if (key == "topo.regions") {
    const std::size_t n = parse_size(key, value);
    if (n < 2 || n > 64) {
      throw std::invalid_argument("topo.regions must be in [2, 64], got \"" +
                                  value + "\"");
    }
    topo_regions = n;
  } else if (key == "topo.sync_latency") {
    const double v = parse_double(key, value);
    if (v < 0.0) {
      throw std::invalid_argument(
          "topo.sync_latency (seconds) must be >= 0, got \"" + value + "\"");
    }
    topo_sync_latency = v;
  } else if (key == "topo.phase_spread") {
    const double v = parse_double(key, value);
    if (v < 0.0) {
      throw std::invalid_argument(
          "topo.phase_spread (hours) must be >= 0, got \"" + value + "\"");
    }
    topo_phase_spread = v;
  } else if (key.starts_with("topo.")) {
    // Unlike the generator families there is no registry behind `topo.*`,
    // so a typoed knob would otherwise be silently carried and never read.
    throw std::invalid_argument(
        "unknown topology key \"" + key +
        "\" (topo.regions|topo.sync_latency|topo.phase_spread)");
  } else if (key == "journal") {
    journal_enabled = parse_long(key, value) != 0;
  } else if (key == "journal.dir") {
    journal_dir = value;
  } else if (key == "snapshot_every" || key == "snapshot-every") {
    snapshot_every = parse_size(key, value);
  } else if (key == "journal.halt-after") {
    journal_halt_after = parse_size(key, value);
  } else {
    return false;
  }
  return true;
}

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  if (!try_set(key, value)) {
    throw std::invalid_argument("unknown scenario key \"" + key + "\"");
  }
}

namespace {

// %.17g prints the shortest-or-17-significant-digit decimal that strtod
// maps back to the identical IEEE-754 double — the exactness the journal
// header depends on. (parse.h rejects hexfloat, so %a is not an option.)
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string bias_cli_name(const std::optional<trace::BiasedWorkload>& b) {
  if (!b) return "none";
  switch (*b) {
    case trace::BiasedWorkload::kGeneral: return "general";
    case trace::BiasedWorkload::kComputeHeavy: return "compute";
    case trace::BiasedWorkload::kMemoryHeavy: return "memory";
    case trace::BiasedWorkload::kResourceHeavy: return "resource";
  }
  throw std::logic_error("bias_cli_name: unhandled BiasedWorkload");
}

void emit_generator(std::string& out, const std::string& family,
                    const workload::GeneratorSpec& gen) {
  if (!gen.configured()) return;
  out += family + "=" + gen.name + "\n";
  // GenParams.kv is a std::map: sorted, so the serialization is canonical.
  for (const auto& [k, v] : gen.params.kv) {
    out += family + "." + k + "=" + v + "\n";
  }
}

}  // namespace

std::string ScenarioSpec::to_kv() const {
  if (name.find('\n') != std::string::npos) {
    throw std::invalid_argument(
        "ScenarioSpec::to_kv: scenario name contains a newline");
  }
  std::string out;
  out += "name=" + name + "\n";
  out += "seed=" + std::to_string(seed) + "\n";
  out += "devices=" + std::to_string(num_devices) + "\n";
  out += "jobs=" + std::to_string(num_jobs) + "\n";
  out += "workload=" + trace::workload_cli_name(workload) + "\n";
  out += "bias=" + bias_cli_name(bias) + "\n";
  out += "horizon-s=" + fmt_double(horizon) + "\n";
  out += "min-rounds=" + std::to_string(job_trace.min_rounds) + "\n";
  out += "max-rounds=" + std::to_string(job_trace.max_rounds) + "\n";
  out += "min-demand=" + std::to_string(job_trace.min_demand) + "\n";
  out += "max-demand=" + std::to_string(job_trace.max_demand) + "\n";
  out += "interarrival-s=" + fmt_double(job_trace.mean_interarrival) + "\n";
  out += "base-trace=" + std::to_string(job_trace.base_trace_size) + "\n";
  out += "task-s=" + fmt_double(job_trace.nominal_task_s) + "\n";
  out += "task-cv=" + fmt_double(job_trace.task_cv) + "\n";
  emit_generator(out, "arrival", arrival_gen);
  emit_generator(out, "mix", mix_gen);
  emit_generator(out, "churn", churn_gen);
  emit_generator(out, "protocol", protocol_gen);
  out += "open-loop=" + std::string(open_loop ? "1" : "0") + "\n";
  out += "stream=" + std::string(streaming ? "1" : "0") + "\n";
  out += "index=" + std::string(use_index ? "1" : "0") + "\n";
  out += "shards=" + std::to_string(shards) + "\n";
  // Topology shapes the world (phases, uplink latency), so a journaled
  // hier run must replay hier. Only configured knobs are emitted; flat
  // specs serialize byte-identically to pre-topology journals.
  if (!topology.empty()) out += "topology=" + topology + "\n";
  if (topo_phase_spread) {
    out += "topo.phase_spread=" + fmt_double(*topo_phase_spread) + "\n";
  }
  if (topo_regions) {
    out += "topo.regions=" + std::to_string(*topo_regions) + "\n";
  }
  if (topo_sync_latency) {
    out += "topo.sync_latency=" + fmt_double(*topo_sync_latency) + "\n";
  }
  // Part of the world: a replayed run must snapshot at the same cadence.
  // The journal plumbing knobs (journal / journal.dir / journal.halt-after)
  // are NOT — replay decides its own sinks.
  out += "snapshot_every=" + std::to_string(snapshot_every) + "\n";
  return out;
}

topology::TopologySpec ScenarioSpec::topology_spec() const {
  topology::TopologySpec t;
  t.hier = topology == "hier";
  if (topo_regions) t.regions = *topo_regions;
  if (topo_sync_latency) t.sync_latency = *topo_sync_latency;
  if (topo_phase_spread) t.phase_spread_h = *topo_phase_spread;
  return t;
}

bool PolicySpec::try_set(const std::string& key, const std::string& value) {
  if (key == "policy") {
    name = value;
  } else if (key == "epsilon") {
    params.venn.epsilon = parse_double(key, value);
  } else if (key == "tiers") {
    params.venn.num_tiers = parse_size(key, value);
  } else if (key == "supply-window-h") {
    params.venn.supply_window = parse_double(key, value) * kHour;
  } else if (key == "supply-window-s") {
    params.venn.supply_window = parse_double(key, value);  // exact spelling
  } else if (key == "tail-pct") {
    params.venn.tail_percentile = parse_double(key, value);
  } else if (key == "ewma-alpha") {
    params.venn.ewma_alpha = parse_double(key, value);
  } else if (key == "order-total") {
    params.venn.order_by_total_remaining = parse_long(key, value) != 0;
  } else if (key.starts_with("param.")) {
    params.extra[key.substr(6)] = value;
  } else {
    return false;
  }
  return true;
}

void PolicySpec::set(const std::string& key, const std::string& value) {
  if (!try_set(key, value)) {
    throw std::invalid_argument("unknown policy key \"" + key + "\"");
  }
}

std::string PolicySpec::to_kv() const {
  std::string out;
  out += "policy=" + name + "\n";
  out += "epsilon=" + fmt_double(params.venn.epsilon) + "\n";
  out += "tiers=" + std::to_string(params.venn.num_tiers) + "\n";
  out += "supply-window-s=" + fmt_double(params.venn.supply_window) + "\n";
  out += "tail-pct=" + fmt_double(params.venn.tail_percentile) + "\n";
  out += "ewma-alpha=" + fmt_double(params.venn.ewma_alpha) + "\n";
  out += "order-total=" +
         std::string(params.venn.order_by_total_remaining ? "1" : "0") + "\n";
  // params.extra is a std::map: sorted, canonical.
  for (const auto& [k, v] : params.extra) {
    out += "param." + k + "=" + v + "\n";
  }
  return out;
}

}  // namespace venn::api
