#include "api/scenario.h"

#include <stdexcept>

#include "api/parse.h"
#include "protocol/registry.h"

namespace venn::api {

using internal::parse_double;
using internal::parse_int;
using internal::parse_long;
using internal::parse_size;
using internal::parse_u64;

trace::Workload parse_workload(const std::string& s) {
  const auto w = trace::workload_from_name(s);
  if (!w) {
    throw std::invalid_argument("unknown workload \"" + s +
                                "\" (even|small|large|low|high)");
  }
  return *w;
}

std::optional<trace::BiasedWorkload> parse_bias(const std::string& s) {
  if (s == "none") return std::nullopt;
  if (s == "general") return trace::BiasedWorkload::kGeneral;
  if (s == "compute") return trace::BiasedWorkload::kComputeHeavy;
  if (s == "memory") return trace::BiasedWorkload::kMemoryHeavy;
  if (s == "resource") return trace::BiasedWorkload::kResourceHeavy;
  throw std::invalid_argument(
      "unknown bias \"" + s + "\" (general|compute|memory|resource|none)");
}

bool ScenarioSpec::try_set(const std::string& key, const std::string& value) {
  if (key == "name") {
    name = value;
  } else if (key == "seed") {
    seed = parse_u64(key, value);
  } else if (key == "devices") {
    num_devices = parse_size(key, value);
  } else if (key == "jobs") {
    num_jobs = parse_size(key, value);
  } else if (key == "workload") {
    workload = parse_workload(value);
  } else if (key == "bias") {
    bias = parse_bias(value);
  } else if (key == "horizon-days") {
    horizon = parse_double(key, value) * kDay;
  } else if (key == "min-rounds") {
    job_trace.min_rounds = parse_int(key, value);
  } else if (key == "max-rounds") {
    job_trace.max_rounds = parse_int(key, value);
  } else if (key == "min-demand") {
    job_trace.min_demand = parse_int(key, value);
  } else if (key == "max-demand") {
    job_trace.max_demand = parse_int(key, value);
  } else if (key == "interarrival-min") {
    job_trace.mean_interarrival = parse_double(key, value) * kMinute;
  } else if (key == "base-trace") {
    job_trace.base_trace_size = parse_size(key, value);
  } else if (key == "task-s") {
    job_trace.nominal_task_s = parse_double(key, value);
  } else if (key == "task-cv") {
    job_trace.task_cv = parse_double(key, value);
  } else if (key == "arrival") {
    (void)workload::arrival_registry().keys(value);  // throws on unknown name
    arrival_gen.name = value;
  } else if (key == "mix") {
    (void)workload::mix_registry().keys(value);  // throws on unknown name
    mix_gen.name = value;
  } else if (key == "churn") {
    (void)workload::churn_registry().keys(value);  // throws on unknown name
    churn_gen.name = value;
  } else if (key == "protocol") {
    (void)protocol::protocol_registry().keys(value);  // throws on unknown
    if (protocol_gen.configured() && protocol_gen.name != value) {
      // Overrides accumulate from several sources (CLI flags, sweep
      // grids, config files); two different aggregation regimes in one
      // scenario is a conflict, not a last-writer-wins.
      throw std::invalid_argument("conflicting values for protocol: \"" +
                                  protocol_gen.name + "\" vs \"" + value +
                                  "\"");
    }
    protocol_gen.name = value;
  } else if (key.starts_with("arrival.")) {
    arrival_gen.params.kv[key.substr(8)] = value;
  } else if (key.starts_with("mix.")) {
    mix_gen.params.kv[key.substr(4)] = value;
  } else if (key.starts_with("churn.")) {
    churn_gen.params.kv[key.substr(6)] = value;
  } else if (key.starts_with("protocol.")) {
    protocol_gen.params.kv[key.substr(9)] = value;
  } else if (key == "open-loop") {
    open_loop = parse_long(key, value) != 0;
  } else if (key == "stream") {
    streaming = parse_long(key, value) != 0;
  } else if (key == "index") {
    use_index = parse_long(key, value) != 0;
  } else if (key == "shards") {
    const std::size_t n = parse_size(key, value);
    if (n < 1 || n > 64) {
      throw std::invalid_argument("shards must be in [1, 64], got \"" + value +
                                  "\"");
    }
    shards = n;
  } else {
    return false;
  }
  return true;
}

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  if (!try_set(key, value)) {
    throw std::invalid_argument("unknown scenario key \"" + key + "\"");
  }
}

bool PolicySpec::try_set(const std::string& key, const std::string& value) {
  if (key == "policy") {
    name = value;
  } else if (key == "epsilon") {
    params.venn.epsilon = parse_double(key, value);
  } else if (key == "tiers") {
    params.venn.num_tiers = parse_size(key, value);
  } else if (key == "supply-window-h") {
    params.venn.supply_window = parse_double(key, value) * kHour;
  } else if (key == "tail-pct") {
    params.venn.tail_percentile = parse_double(key, value);
  } else if (key == "ewma-alpha") {
    params.venn.ewma_alpha = parse_double(key, value);
  } else if (key == "order-total") {
    params.venn.order_by_total_remaining = parse_long(key, value) != 0;
  } else if (key.starts_with("param.")) {
    params.extra[key.substr(6)] = value;
  } else {
    return false;
  }
  return true;
}

void PolicySpec::set(const std::string& key, const std::string& value) {
  if (!try_set(key, value)) {
    throw std::invalid_argument("unknown policy key \"" + key + "\"");
  }
}

}  // namespace venn::api
