// Experiment::replay — deterministic re-execution of a journaled run.
//
// Replay does not interpret journal records as commands; it rebuilds the
// experiment the journal's header describes (canonical scenario/policy
// key=value, seed) and RUNS IT AGAIN, with a JournalVerifier installed as
// the journal sink. Determinism does the heavy lifting: the re-executed
// run emits the same events at the same times in the same order, and the
// verifier checks every one byte-for-byte against the journal. A complete
// journal replays strict (must end with the kRunEnd footer); a crashed or
// torn journal replays in resume mode — the verified prefix anchors the
// recovery, the stored snapshot is compared field-for-field at its marked
// commit, and the run then continues live to completion.
//
// Journals recorded by the live daemon additionally carry kExternal
// records (service traffic commands). Those replay through a LiveSession:
// the driver advances the sim clock to each command's recorded cursor,
// consumes the kExternal record from the tape, and re-applies the command
// — the drain-before-journal rule on the recording side guarantees the
// interleaving with ordinary trace events matches event for event.
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/builder.h"
#include "api/live.h"
#include "api/rebuild.h"
#include "journal/reader.h"
#include "journal/snapshot.h"
#include "journal/verifier.h"
#include "util/logging.h"

namespace venn::api {

namespace {

// Applies a canonical `key=value\n` block line by line.
template <typename Setter>
void apply_kv(const std::string& kv, const char* what, Setter&& set) {
  std::size_t pos = 0;
  while (pos < kv.size()) {
    std::size_t nl = kv.find('\n', pos);
    if (nl == std::string::npos) nl = kv.size();
    const std::string line = kv.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("journal header: malformed " +
                               std::string(what) + " line \"" + line + "\"");
    }
    set(line.substr(0, eq), line.substr(eq + 1));
  }
}

}  // namespace

RebuiltRun rebuild_from_header(const journal::JournalHeader& header,
                               std::vector<RunObserver*> observers) {
  // Rebuild the world description through the normal override surface, so
  // a header knob the build does not know is a loud unknown-key error.
  ScenarioSpec scenario;
  apply_kv(header.scenario_kv, "scenario",
           [&scenario](const std::string& k, const std::string& v) {
             scenario.set(k, v);
           });
  PolicySpec policy;
  apply_kv(header.policy_kv, "policy",
           [&policy](const std::string& k, const std::string& v) {
             policy.set(k, v);
           });
  if (scenario.seed != header.seed) {
    throw std::runtime_error(
        "journal header: seed field (" + std::to_string(header.seed) +
        ") disagrees with the scenario kv (" + std::to_string(scenario.seed) +
        ")");
  }
  // The rebuilt run verifies (or re-records through a fresh writer); the
  // plumbing knobs are not part of the header kv, but clear them
  // defensively.
  scenario.journal_enabled = false;
  scenario.journal_dir.clear();
  scenario.journal_halt_after = 0;

  ExperimentInputs inputs = build_inputs(scenario);
  const std::uint64_t digest = inputs_digest(inputs);
  if (digest != header.inputs_digest) {
    throw std::runtime_error(
        "journal replay: regenerated inputs do not match the journaled run "
        "(digest " + std::to_string(digest) + " vs recorded " +
        std::to_string(header.inputs_digest) +
        "). The journaled experiment used inputs that are not expressible "
        "as scenario overrides (use_devices/use_jobs or programmatic "
        "availability/hardware configs); such runs cannot be replayed from "
        "the journal alone.");
  }
  Experiment ex(scenario, std::move(inputs), std::move(observers));
  return RebuiltRun{std::move(scenario), std::move(policy), std::move(ex)};
}

std::unique_ptr<Scheduler> rebuilt_scheduler(const RebuiltRun& run) {
  return PolicyRegistry::instance().create(
      run.policy.name, run.policy.params,
      run.experiment.stream_seed("scheduler"));
}

ReplayReport Experiment::replay(const std::string& journal_path,
                                const ReplayOptions& opts) {
  // Resume means the journal may end mid-run — a torn final stretch is the
  // documented normal case (the writer was killed mid-append), so resume
  // implies tolerance; strict mode stays strict.
  const bool tolerant = opts.tolerate_torn_tail || opts.resume;
  journal::JournalReader reader(journal_path, tolerant);
  const journal::JournalScan scan = reader.scan();
  if (scan.torn) {
    VENN_INFO << "journal " << journal_path << ": torn tail at byte "
              << scan.torn_offset << "; recovered " << scan.prefix_end
              << "-byte prefix (" << scan.records << " records, "
              << scan.commits << " commits)";
  }
  const journal::JournalHeader& header = reader.header();
  RebuiltRun run = rebuild_from_header(header);

  // The newest stored snapshot, when asked for and when one was marked:
  // the zero-drift anchor of a crash recovery.
  std::optional<journal::StateSnapshot> snapshot;
  if (opts.verify_snapshot) {
    if (const auto commits = reader.last_snapshot_commits()) {
      snapshot = journal::read_snapshot_file(
          journal::snapshot_path(journal_path, *commits));
    }
  }

  journal::JournalVerifier verifier(
      reader,
      opts.resume ? journal::JournalVerifier::Mode::kResume
                  : journal::JournalVerifier::Mode::kStrict,
      snapshot ? &*snapshot : nullptr);
  auto scheduler = rebuilt_scheduler(run);

  ReplayReport report;
  if (scan.externals.empty()) {
    report.result = run.experiment.run_with_sink(std::move(scheduler),
                                                 header.label, &verifier);
  } else {
    // Service-journal replay: pace the run through the recorded external
    // commands. advance_to drains every trace event the daemon drained
    // before journaling the command, take_external consumes the kExternal
    // record itself, apply re-runs the command's cascade.
    LiveSession live(run.experiment, std::move(scheduler), header.label,
                     &verifier);
    live.start();
    for (const journal::ExternalEvent& ext : scan.externals) {
      live.advance_to(ext.time);
      verifier.take_external(ext);
      live.apply(TrafficCommand::parse(ext.command));
    }
    report.result = live.finish();
  }
  report.label = header.label;
  report.events_verified = verifier.events_verified();
  report.resumed_past_journal = verifier.passthrough();
  report.snapshot_verified = verifier.snapshot_verified();
  report.snapshot_commits = snapshot ? snapshot->commits : 0;
  return report;
}

}  // namespace venn::api
