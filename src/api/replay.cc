// Experiment::replay — deterministic re-execution of a journaled run.
//
// Replay does not interpret journal records as commands; it rebuilds the
// experiment the journal's header describes (canonical scenario/policy
// key=value, seed) and RUNS IT AGAIN, with a JournalVerifier installed as
// the journal sink. Determinism does the heavy lifting: the re-executed
// run emits the same events at the same times in the same order, and the
// verifier checks every one byte-for-byte against the journal. A complete
// journal replays strict (must end with the kRunEnd footer); a crashed or
// torn journal replays in resume mode — the verified prefix anchors the
// recovery, the stored snapshot is compared field-for-field at its marked
// commit, and the run then continues live to completion.
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/builder.h"
#include "journal/reader.h"
#include "journal/snapshot.h"
#include "journal/verifier.h"

namespace venn::api {

namespace {

// Applies a canonical `key=value\n` block line by line.
template <typename Setter>
void apply_kv(const std::string& kv, const char* what, Setter&& set) {
  std::size_t pos = 0;
  while (pos < kv.size()) {
    std::size_t nl = kv.find('\n', pos);
    if (nl == std::string::npos) nl = kv.size();
    const std::string line = kv.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("journal header: malformed " +
                               std::string(what) + " line \"" + line + "\"");
    }
    set(line.substr(0, eq), line.substr(eq + 1));
  }
}

}  // namespace

ReplayReport Experiment::replay(const std::string& journal_path,
                                const ReplayOptions& opts) {
  journal::JournalReader reader(journal_path, opts.tolerate_torn_tail);
  const journal::JournalHeader& header = reader.header();

  // Rebuild the world description through the normal override surface, so
  // a header knob the build does not know is a loud unknown-key error.
  ScenarioSpec scenario;
  apply_kv(header.scenario_kv, "scenario",
           [&scenario](const std::string& k, const std::string& v) {
             scenario.set(k, v);
           });
  PolicySpec policy;
  apply_kv(header.policy_kv, "policy",
           [&policy](const std::string& k, const std::string& v) {
             policy.set(k, v);
           });
  if (scenario.seed != header.seed) {
    throw std::runtime_error(
        "journal header: seed field (" + std::to_string(header.seed) +
        ") disagrees with the scenario kv (" + std::to_string(scenario.seed) +
        ")");
  }
  // The replayed run verifies instead of journaling; the plumbing knobs
  // are not part of the header kv, but clear them defensively.
  scenario.journal_enabled = false;
  scenario.journal_dir.clear();
  scenario.journal_halt_after = 0;

  ExperimentInputs inputs = build_inputs(scenario);
  const std::uint64_t digest = inputs_digest(inputs);
  if (digest != header.inputs_digest) {
    throw std::runtime_error(
        "journal replay: regenerated inputs do not match the journaled run "
        "(digest " + std::to_string(digest) + " vs recorded " +
        std::to_string(header.inputs_digest) +
        "). The journaled experiment used inputs that are not expressible "
        "as scenario overrides (use_devices/use_jobs or programmatic "
        "availability/hardware configs); such runs cannot be replayed from "
        "the journal alone.");
  }
  Experiment ex(scenario, std::move(inputs));

  // The newest stored snapshot, when asked for and when one was marked:
  // the zero-drift anchor of a crash recovery.
  std::optional<journal::StateSnapshot> snapshot;
  if (opts.verify_snapshot) {
    if (const auto commits = reader.last_snapshot_commits()) {
      snapshot = journal::read_snapshot_file(
          journal::snapshot_path(journal_path, *commits));
    }
  }

  journal::JournalVerifier verifier(
      reader,
      opts.resume ? journal::JournalVerifier::Mode::kResume
                  : journal::JournalVerifier::Mode::kStrict,
      snapshot ? &*snapshot : nullptr);
  auto scheduler = PolicyRegistry::instance().create(
      policy.name, policy.params, ex.stream_seed("scheduler"));

  ReplayReport report;
  report.result = ex.run_with_sink(std::move(scheduler), header.label,
                                   &verifier);
  report.label = header.label;
  report.events_verified = verifier.events_verified();
  report.resumed_past_journal = verifier.passthrough();
  report.snapshot_verified = verifier.snapshot_verified();
  report.snapshot_commits = snapshot ? snapshot->commits : 0;
  return report;
}

}  // namespace venn::api
