// Stock observers built on the RunObserver interface.
//
// AssignmentMatrixObserver lives in core/observer.h (the run path installs
// it for every run). This header adds the time-series recorder: cluster
// activity streamed into the same tsdb store the Venn scheduler uses for
// supply estimation, so experiments can ask "what was the assignment rate
// over the last day?" the way §4.4 asks it about device supply.
#pragma once

#include "core/observer.h"
#include "tsdb/timeseries.h"

namespace venn::api {

// Records one point per lifecycle event, keyed by stream:
//   kAssignments        — value 1 per device-to-job assignment
//   kRoundsCompleted    — value = the round's scheduling delay (sum/rate
//                         queries give delay totals; count queries rounds)
//   kJobsFinished       — value = the job's JCT
//   kResponses          — value = the response's staleness in rounds (0
//                         under sync; count queries give responses, sum
//                         queries give total staleness)
//   kStragglersReleased — value 1 per device a protocol cut off
//                         mid-computation (over-selection wasted work)
class TimeSeriesRecorder final : public RunObserver {
 public:
  enum Stream : std::uint64_t {
    kAssignments = 0,
    kRoundsCompleted = 1,
    kJobsFinished = 2,
    kResponses = 3,
    kStragglersReleased = 4,
  };

  // Holds the most recent run only: a fresh run restarts simulated time at
  // zero, so carrying points across runs would break series monotonicity.
  void on_run_start() override { store_ = {}; }

  void on_assignment(const Device&, const Job&, const AssignOutcome&,
                     SimTime now) override {
    store_.record(kAssignments, now);
  }

  void on_response_collected(const Job&, int staleness,
                             SimTime now) override {
    store_.record(kResponses, now, static_cast<double>(staleness));
  }

  void on_straggler_released(const Device&, const Job&, SimTime now) override {
    store_.record(kStragglersReleased, now);
  }

  void on_round_complete(const Job&, SimTime sched_delay, SimTime,
                         SimTime now) override {
    store_.record(kRoundsCompleted, now, sched_delay);
  }

  // Mean response staleness (rounds) over the trailing window — the
  // FedBuff-style health signal of a buffered-aggregation run.
  [[nodiscard]] double mean_staleness(SimTime now, SimTime window) const {
    const tsdb::Series* s = store_.find(kResponses);
    if (s == nullptr) return 0.0;
    const std::size_t n = s->count_in_window(now, window);
    return n == 0 ? 0.0
                  : s->sum_in_window(now, window) / static_cast<double>(n);
  }

  void on_job_finish(const Job& job, SimTime now) override {
    store_.record(kJobsFinished, now, job.jct());
  }

  [[nodiscard]] const tsdb::TimeSeriesStore& store() const { return store_; }

  // Assignments per second over the trailing window ending at `now`.
  [[nodiscard]] double assignment_rate(SimTime now, SimTime window) const {
    return store_.rate(kAssignments, now, window);
  }

 private:
  tsdb::TimeSeriesStore store_;
};

}  // namespace venn::api
