// ExperimentBuilder / Experiment: the one construction path for runs.
//
// Every bench, example and the CLI builds experiments the same way:
//
//   const auto ex = venn::ExperimentBuilder().seed(7).devices(3000).jobs(8)
//                       .build();               // generates inputs once
//   const RunResult venn = ex.run("venn");      // policies share the trace
//   const RunResult rnd  = ex.run("random");
//
// An Experiment is an immutable (scenario, generated inputs) pair; run()
// instantiates a registered policy against it, installs the standard
// observers plus any user-supplied ones, and collects results. Seed streams
// are derived centrally (Rng::derive) so runs are reproducible and the
// legacy shim produces byte-identical numbers.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/scenario.h"
#include "core/experiment.h"
#include "core/metrics.h"
#include "core/observer.h"
#include "journal/sink.h"
#include "protocol/registry.h"

namespace venn::api {

// Input generation for a scenario (trace depends only on the seed — never
// on the policy). Scenarios with workload generators configured build
// through them: churn models materialize (or, with stream=1, defer) device
// sessions, mix samplers draw the job list, arrival processes assign
// submission times. Unconfigured families keep the legacy single-model
// path byte-identically.
[[nodiscard]] ExperimentInputs build_inputs(const ScenarioSpec& scenario);

// As above with the generator set already instantiated (avoids rebuilding
// base traces / replay files when the caller keeps the set, as the
// ExperimentBuilder does).
[[nodiscard]] ExperimentInputs build_inputs(
    const ScenarioSpec& scenario, const workload::GeneratorSet& generators);

// FNV-1a fingerprint of generated inputs (device ids/specs/sessions, full
// job specs — doubles as raw bits). Stored in the journal header: replay
// regenerates the inputs from the header's scenario kv and refuses to
// verify against a world it could not reproduce — which catches scenario
// state NOT expressible as key=value overrides (programmatic
// availability/hardware configs, use_devices/use_jobs).
[[nodiscard]] std::uint64_t inputs_digest(const ExperimentInputs& inputs);

// Canonical journal file path of a run: <journal.dir>/<scenario>-<label>
// .vjl (journal.dir defaults to "."). Snapshots land next to it as
// <path>.snap-NNNNNN.
[[nodiscard]] std::string journal_file_path(const ScenarioSpec& scenario,
                                            const std::string& label);

// Options for Experiment::replay.
struct ReplayOptions {
  // Accept a journal whose final stretch is torn or corrupt: the reader
  // recovers everything before the tear instead of throwing. Implies the
  // journal may end mid-run, so pair with `resume` to finish the run.
  bool tolerate_torn_tail = false;
  // Continue the run live past the journal's end (crash recovery). Off =
  // strict mode: the journal must cover the whole run and close with the
  // kRunEnd footer.
  bool resume = false;
  // When the journal marks snapshots, load the newest stored snapshot file
  // and compare the re-executed coordinator's state against it field for
  // field at the marked commit — the zero-drift restore check.
  bool verify_snapshot = true;
};

// What a replay proved, alongside the re-executed run's results.
struct ReplayReport {
  RunResult result;
  std::string label;  // scheduler label recorded in the journal header
  std::uint64_t events_verified = 0;  // events matched byte-for-byte
  // True when the journal ended mid-run and the re-execution continued
  // live past it (resume mode: verified prefix + live tail).
  bool resumed_past_journal = false;
  bool snapshot_verified = false;     // stored snapshot compared clean
  std::uint64_t snapshot_commits = 0; // commit count of that snapshot (0=none)
};

class Experiment {
 public:
  Experiment(ScenarioSpec scenario, ExperimentInputs inputs,
             std::vector<RunObserver*> observers = {});

  // Adopts an already-instantiated generator set (must match the scenario;
  // the ExperimentBuilder uses this to instantiate generators exactly once
  // per build). A null set is built from the scenario.
  Experiment(ScenarioSpec scenario, ExperimentInputs inputs,
             std::shared_ptr<const workload::GeneratorSet> generators,
             std::vector<RunObserver*> observers);

  [[nodiscard]] const ScenarioSpec& scenario() const { return scenario_; }
  [[nodiscard]] const ExperimentInputs& inputs() const { return inputs_; }
  // The instantiated workload generators (never null after construction)
  // and the subscribed observers — the LiveSession construction surface.
  [[nodiscard]] const workload::GeneratorSet& generators() const {
    return *generators_;
  }
  [[nodiscard]] const std::vector<RunObserver*>& observers() const {
    return observers_;
  }

  // The named seed stream for this experiment (engine, scheduler, ...).
  [[nodiscard]] std::uint64_t stream_seed(std::string_view tag) const;

  // The round protocol every run of this experiment uses (instantiated
  // once at construction from `protocol=` / `protocol.<key>` — the sync
  // default when unconfigured).
  [[nodiscard]] const protocol::RoundProtocol& round_protocol() const {
    return *protocol_;
  }

  // Runs a registered policy against the shared inputs. With `journal=1`
  // this is the journaled entry point: a JournalWriter is installed for
  // the run (the header records the policy's canonical key=value form —
  // which is why run_with() rejects journaled scenarios) and every event
  // is persisted to journal_file_path(scenario, label).
  [[nodiscard]] RunResult run(const PolicySpec& policy) const;

  // Runs an externally constructed scheduler (e.g. to keep a handle on it
  // for introspection, or a policy variant no factory exposes). `label`
  // defaults to the scheduler's name(). Throws std::invalid_argument when
  // the scenario has journal=1: an external scheduler has no key=value
  // form for the journal header, so journaled runs must go through run().
  [[nodiscard]] RunResult run_with(std::unique_ptr<Scheduler> scheduler,
                                   std::string label = {}) const;

  // Runs with a journal sink observing every event (null = none). The
  // writer and the replay verifier both enter through here, so a recorded
  // and a re-executed run are driven by the identical code path.
  [[nodiscard]] RunResult run_with_sink(std::unique_ptr<Scheduler> scheduler,
                                        std::string label,
                                        journal::JournalSink* sink) const;

  // Byte-identical replay of a journaled run (api/replay.cc): rebuilds the
  // experiment from the journal header (scenario + policy key=value, seed),
  // verifies the regenerated inputs against the header's digest, and
  // re-executes the run with a JournalVerifier installed — every event the
  // re-execution emits is compared byte-for-byte against the journal.
  // Throws std::runtime_error on any divergence, corruption (see
  // ReplayOptions::tolerate_torn_tail) or an inputs-digest mismatch.
  [[nodiscard]] static ReplayReport replay(const std::string& journal_path,
                                           const ReplayOptions& opts = {});

 private:
  ScenarioSpec scenario_;
  ExperimentInputs inputs_;
  // Instantiated workload generators (shared: Experiment is copyable and
  // the generators are immutable — per-run randomness lives in streams).
  std::shared_ptr<const workload::GeneratorSet> generators_;
  // Instantiated round protocol (same sharing rationale). Never null.
  std::shared_ptr<const protocol::RoundProtocol> protocol_;
  std::vector<RunObserver*> observers_;
};

class ExperimentBuilder {
 public:
  // Wholesale scenario / policy assignment.
  ExperimentBuilder& scenario(ScenarioSpec s);
  ExperimentBuilder& policy(PolicySpec p);  // default policy for run()

  // Fluent scenario shortcuts.
  ExperimentBuilder& name(std::string v);
  ExperimentBuilder& seed(std::uint64_t v);
  ExperimentBuilder& devices(std::size_t n);
  ExperimentBuilder& jobs(std::size_t n);
  ExperimentBuilder& workload(trace::Workload w);
  ExperimentBuilder& bias(trace::BiasedWorkload b);
  ExperimentBuilder& horizon(SimTime t);
  ExperimentBuilder& rounds(int min, int max);
  ExperimentBuilder& demand(int min, int max);
  ExperimentBuilder& interarrival(SimTime mean);

  // `key=value` overrides: tries scenario keys, then policy keys; throws
  // std::invalid_argument on unknown keys or bad values.
  ExperimentBuilder& set(const std::string& key, const std::string& value);
  ExperimentBuilder& override_kv(const std::string& token);  // "key=value"

  // Replaces the generated population / workload with explicit inputs
  // (lower-level scenarios like the Fig. 3 toy example).
  ExperimentBuilder& use_devices(std::vector<Device> devices);
  ExperimentBuilder& use_jobs(std::vector<trace::JobSpec> jobs);

  // Subscribes an observer to every run of the built experiment. The caller
  // keeps ownership; the observer must outlive the runs.
  ExperimentBuilder& observe(RunObserver& obs);

  // Generates inputs (unless overridden) and freezes the experiment.
  [[nodiscard]] Experiment build() const;

  // build() + run the default policy (set via policy()/"policy=" override).
  [[nodiscard]] RunResult run() const;

  [[nodiscard]] const ScenarioSpec& current_scenario() const {
    return scenario_;
  }
  [[nodiscard]] const PolicySpec& current_policy() const { return policy_; }

 private:
  ScenarioSpec scenario_;
  PolicySpec policy_;
  std::optional<std::vector<Device>> devices_override_;
  std::optional<std::vector<trace::JobSpec>> jobs_override_;
  std::vector<RunObserver*> observers_;
};

}  // namespace venn::api
