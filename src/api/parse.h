// Forwarder: the validated key=value numeric parsers moved to
// util/parse.h so that non-api subsystems (src/workload/) can share them.
// api code keeps using the venn::api::internal spellings.
#pragma once

#include "util/parse.h"

namespace venn::api::internal {

using venn::internal::parse_double;
using venn::internal::parse_int;
using venn::internal::parse_long;
using venn::internal::parse_positive;
using venn::internal::parse_prob;
using venn::internal::parse_size;
using venn::internal::parse_u64;

}  // namespace venn::api::internal
