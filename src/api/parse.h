// Internal validated string-to-number parsing shared by the key=value
// surfaces (ScenarioSpec / PolicySpec / PolicyParams). Every helper rejects
// empty strings, trailing garbage ("12x") and out-of-range magnitudes with
// std::invalid_argument naming the offending key, so typos fail loudly
// instead of silently truncating or saturating.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace venn::api::internal {

inline long parse_long(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("bad integer for " + key + ": \"" + value +
                                "\"");
  }
  if (errno == ERANGE) {
    throw std::invalid_argument("out of range for " + key + ": \"" + value +
                                "\"");
  }
  return v;
}

// For size-like keys (device counts, job counts): negatives are rejected
// here rather than wrapping through a size_t cast.
inline std::size_t parse_size(const std::string& key,
                              const std::string& value) {
  const long v = parse_long(key, value);
  if (v < 0) {
    throw std::invalid_argument("negative value for " + key + ": \"" + value +
                                "\"");
  }
  return static_cast<std::size_t>(v);
}

// For int-typed non-negative keys (round/demand bounds): rejects values the
// int field cannot hold instead of wrapping through a static_cast.
inline int parse_int(const std::string& key, const std::string& value) {
  const long v = parse_long(key, value);
  if (v < 0) {
    throw std::invalid_argument("negative value for " + key + ": \"" + value +
                                "\"");
  }
  if (v > INT_MAX) {
    throw std::invalid_argument("out of range for " + key + ": \"" + value +
                                "\"");
  }
  return static_cast<int>(v);
}

inline std::uint64_t parse_u64(const std::string& key,
                               const std::string& value) {
  if (!value.empty() && value[0] == '-') {
    throw std::invalid_argument("negative value for " + key + ": \"" + value +
                                "\"");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("bad integer for " + key + ": \"" + value +
                                "\"");
  }
  if (errno == ERANGE) {
    throw std::invalid_argument("out of range for " + key + ": \"" + value +
                                "\"");
  }
  return static_cast<std::uint64_t>(v);
}

inline double parse_double(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("bad number for " + key + ": \"" + value +
                                "\"");
  }
  if (errno == ERANGE) {
    throw std::invalid_argument("out of range for " + key + ": \"" + value +
                                "\"");
  }
  return v;
}

}  // namespace venn::api::internal
