#include "api/live.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "device/eligibility.h"
#include "util/parse.h"

namespace venn::api {

namespace {

// Shortest-exact double formatting: 17 significant digits round-trip any
// IEEE-754 double through text, keeping canonical() a byte-stable key.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(std::move(tok));
  return out;
}

std::unique_ptr<Scheduler> require_scheduler(std::unique_ptr<Scheduler> s,
                                             std::string* label) {
  if (!s) {
    throw std::invalid_argument("LiveSession: scheduler must not be null");
  }
  if (label->empty()) *label = s->name();
  return s;
}

void need_args(const std::vector<std::string>& tok, std::size_t n) {
  if (tok.size() != n + 1) {
    throw std::invalid_argument("command \"" + tok[0] + "\" takes " +
                                std::to_string(n) + " argument(s), got " +
                                std::to_string(tok.size() - 1));
  }
}

}  // namespace

std::string TrafficCommand::canonical() const {
  switch (kind) {
    case Kind::kAdvance:
      return "advance " + fmt_double(target);
    case Kind::kCheckin:
      return "checkin " + std::to_string(dev) + " " + fmt_double(duration);
    case Kind::kCheckout:
      return "checkout " + std::to_string(dev);
    case Kind::kSubmit:
      return "submit " + std::to_string(spec.rounds) + " " +
             std::to_string(spec.demand) + " " +
             std::to_string(static_cast<int>(spec.category)) + " " +
             fmt_double(spec.nominal_task_s) + " " + fmt_double(spec.task_cv) +
             " " + fmt_double(spec.deadline_s);
    case Kind::kAdmit:
      return "admit";
    case Kind::kRespond:
      return "respond " + std::to_string(dev);
    case Kind::kSnapshotNow:
      return "snapshot-now";
  }
  throw std::logic_error("TrafficCommand: unknown kind");
}

bool TrafficCommand::is_traffic_verb(const std::string& verb) {
  return verb == "advance" || verb == "checkin" || verb == "checkout" ||
         verb == "submit" || verb == "admit" || verb == "respond" ||
         verb == "snapshot-now";
}

TrafficCommand TrafficCommand::parse(const std::string& line) {
  const auto tok = tokenize(line);
  if (tok.empty()) throw std::invalid_argument("empty command");
  TrafficCommand cmd;
  const std::string& verb = tok[0];
  if (verb == "advance") {
    need_args(tok, 1);
    cmd.kind = Kind::kAdvance;
    cmd.target = internal::parse_double("advance.target", tok[1]);
    if (!(cmd.target >= 0.0)) {
      throw std::invalid_argument("advance.target must be >= 0");
    }
  } else if (verb == "checkin") {
    need_args(tok, 2);
    cmd.kind = Kind::kCheckin;
    cmd.dev = internal::parse_size("checkin.dev", tok[1]);
    cmd.duration = internal::parse_positive("checkin.duration", tok[2]);
  } else if (verb == "checkout") {
    need_args(tok, 1);
    cmd.kind = Kind::kCheckout;
    cmd.dev = internal::parse_size("checkout.dev", tok[1]);
  } else if (verb == "submit") {
    need_args(tok, 6);
    cmd.kind = Kind::kSubmit;
    cmd.spec.rounds = internal::parse_int("submit.rounds", tok[1]);
    cmd.spec.demand = internal::parse_int("submit.demand", tok[2]);
    if (cmd.spec.rounds < 1 || cmd.spec.demand < 1) {
      throw std::invalid_argument("submit: rounds and demand must be >= 1");
    }
    const int cat = internal::parse_int("submit.category", tok[3]);
    if (cat < 0 || cat >= kNumCategories) {
      throw std::invalid_argument("submit.category must be in [0, " +
                                  std::to_string(kNumCategories - 1) + "]");
    }
    cmd.spec.category = static_cast<ResourceCategory>(cat);
    cmd.spec.nominal_task_s =
        internal::parse_positive("submit.task_s", tok[4]);
    cmd.spec.task_cv = internal::parse_double("submit.task_cv", tok[5]);
    if (cmd.spec.task_cv < 0.0) {
      throw std::invalid_argument("submit.task_cv must be >= 0");
    }
    cmd.spec.deadline_s = internal::parse_positive("submit.deadline_s", tok[6]);
  } else if (verb == "admit") {
    need_args(tok, 0);
    cmd.kind = Kind::kAdmit;
  } else if (verb == "respond") {
    need_args(tok, 1);
    cmd.kind = Kind::kRespond;
    cmd.dev = internal::parse_size("respond.dev", tok[1]);
  } else if (verb == "snapshot-now") {
    need_args(tok, 0);
    cmd.kind = Kind::kSnapshotNow;
  } else {
    throw std::invalid_argument("unknown traffic command \"" + verb + "\"");
  }
  return cmd;
}

LiveSession::LiveSession(const Experiment& ex,
                         std::unique_ptr<Scheduler> scheduler,
                         std::string label, journal::JournalSink* sink)
    : label_(std::move(label)),
      sink_(sink),
      horizon_(ex.scenario().horizon),
      open_loop_(ex.scenario().open_loop),
      num_devices_(ex.inputs().devices.size()),
      engine_(ex.stream_seed("engine")),
      manager_(require_scheduler(std::move(scheduler), &label_)) {
  // Construction mirrors the historical run_with_sink body step for step —
  // shards before the coordinator, matrix before user observers, observers
  // notified before the coordinator exists. Byte-identity of batch runs
  // rides on this order.
  engine_.set_shards(ex.scenario().shards);
  manager_.add_observer(&matrix_);
  for (RunObserver* obs : ex.observers()) {
    obs->on_run_start();
    manager_.add_observer(obs);
  }

  CoordinatorConfig ccfg;
  ccfg.horizon = ex.scenario().horizon;
  ccfg.seed = ex.scenario().seed;
  ccfg.use_index = ex.scenario().use_index;
  ccfg.protocol = &ex.round_protocol();
  const auto& gen = ex.generators();
  if (gen.churn) {
    ccfg.churn = gen.churn.get();
    ccfg.stream_sessions = ex.scenario().streaming;
  }
  if (ex.scenario().open_loop) {
    ccfg.arrival = gen.arrival.get();
    ccfg.mix = gen.mix.get();
    ccfg.max_jobs = ex.scenario().num_jobs;
  }
  ccfg.journal = sink;
  ccfg.snapshot_every = ex.scenario().snapshot_every;
  ccfg.topo = ex.scenario().topology_spec();
  coord_ = std::make_unique<Coordinator>(engine_, manager_,
                                         ex.inputs().devices, ex.inputs().jobs,
                                         ccfg);
}

LiveSession::~LiveSession() = default;

void LiveSession::start() { coord_->setup(); }

void LiveSession::advance_to(SimTime t) {
  t = std::min(t, horizon_);
  if (t > cursor_) cursor_ = t;
  engine_.run_until(cursor_);
}

std::optional<std::string> LiveSession::validate(
    const TrafficCommand& cmd) const {
  using Kind = TrafficCommand::Kind;
  switch (cmd.kind) {
    case Kind::kAdvance:
      if (cmd.target < cursor_) {
        return "advance target " + std::to_string(cmd.target) +
               " is behind the cursor " + std::to_string(cursor_);
      }
      return std::nullopt;
    case Kind::kCheckin:
    case Kind::kCheckout:
    case Kind::kRespond:
      if (cmd.dev >= num_devices_) {
        return "device " + std::to_string(cmd.dev) +
               " out of range (fleet size " + std::to_string(num_devices_) +
               ")";
      }
      return std::nullopt;
    case Kind::kAdmit:
      if (!open_loop_) {
        return "admit requires an open-loop scenario (arrival= and mix=)";
      }
      return std::nullopt;
    case Kind::kSubmit:
    case Kind::kSnapshotNow:
      return std::nullopt;
  }
  return "unknown command kind";
}

bool LiveSession::apply(const TrafficCommand& cmd) {
  using Kind = TrafficCommand::Kind;
  if (cmd.kind == Kind::kAdvance) {
    advance_to(cmd.target);
    return true;
  }
  // Traffic lands at the cursor THROUGH the event queue, so its cascade
  // interleaves with same-time trace events in seq order — identically
  // when the journaled command is re-applied on replay.
  bool accepted = true;
  engine_.at(cursor_, [this, &cmd, &accepted] {
    switch (cmd.kind) {
      case Kind::kCheckin:
        accepted = coord_->external_checkin(cmd.dev, cmd.duration);
        break;
      case Kind::kCheckout:
        accepted = coord_->external_checkout(cmd.dev);
        break;
      case Kind::kSubmit:
        (void)coord_->external_submit(cmd.spec);
        break;
      case Kind::kAdmit:
        accepted = coord_->external_admit();
        break;
      case Kind::kRespond:
        accepted = coord_->external_response(cmd.dev);
        break;
      case Kind::kSnapshotNow:
        if (sink_ != nullptr) sink_->on_snapshot(coord_->capture_snapshot());
        break;
      case Kind::kAdvance:
        break;  // handled above
    }
  });
  engine_.run_until(cursor_);
  return accepted;
}

RunResult LiveSession::finish() {
  if (finished_) throw std::logic_error("LiveSession::finish called twice");
  finished_ = true;
  advance_to(horizon_);
  if (sink_ != nullptr) sink_->on_run_end(engine_.now());
  RunResult result = collect_results(*coord_, label_);
  result.assignment_matrix = matrix_.matrix();
  return result;
}

}  // namespace venn::api
