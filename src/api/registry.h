// PolicyRegistry: the open, string-keyed scheduling-policy extension point.
//
// The paper positions Venn as "a standalone CL resource manager that
// operates at a layer above all CL jobs" with pluggable scheduling policies
// (§3-§4). This registry is the plug: policies are factories keyed by name,
// the six built-ins ("random", "fifo", "srsf", "venn", "venn-nosched",
// "venn-nomatch") are registered at startup, and third-party policies
// self-register from their own translation unit without touching core:
//
//   const venn::PolicyRegistration kMine{
//       "priority-class", [](const venn::PolicyParams& p, std::uint64_t) {
//         return std::make_unique<PriorityClassScheduler>(
//             static_cast<int>(p.integer("interactive-demand-max", 20)));
//       }};
//
// Any registered name then works everywhere a policy is named: the
// ExperimentBuilder, the SweepRunner, venn_sim_cli and the benches.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scheduler/scheduler.h"
#include "scheduler/venn_sched.h"

namespace venn::api {

// Knobs handed to a policy factory. The Venn family reads the typed
// `venn` block; external policies read free-form `extra` key=value pairs
// (populated from `param.<key>=<value>` overrides). The typed accessors
// return `def` when the key is absent and throw std::invalid_argument when
// a present value fails to parse — a typo'd knob must not silently coerce.
struct PolicyParams {
  VennConfig venn;
  std::map<std::string, std::string> extra;

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] long integer(const std::string& key, long def) const;
  [[nodiscard]] double real(const std::string& key, double def) const;
};

class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>(
      const PolicyParams& params, std::uint64_t seed)>;

  // The process-wide registry, with the built-in policies pre-registered.
  [[nodiscard]] static PolicyRegistry& instance();

  // Registers a factory under `name`. Throws std::invalid_argument if the
  // name is empty or already taken (duplicate registrations are a
  // programming error, not a tie-break).
  void register_policy(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  // Instantiates the named policy. `seed` feeds the policy's private random
  // stream. Throws std::invalid_argument for unknown names, listing the
  // registered ones.
  [[nodiscard]] std::unique_ptr<Scheduler> create(const std::string& name,
                                                  const PolicyParams& params,
                                                  std::uint64_t seed) const;

  // Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

// RAII self-registration helper for external policies: declare one at
// namespace scope and the policy is available before main() runs.
struct PolicyRegistration {
  PolicyRegistration(std::string name, PolicyRegistry::Factory factory) {
    PolicyRegistry::instance().register_policy(std::move(name),
                                               std::move(factory));
  }
};

}  // namespace venn::api
