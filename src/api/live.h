// LiveSession: an Experiment run opened up for external pacing.
//
// Batch runs (Experiment::run*) construct the engine/manager/coordinator
// stack, call Coordinator::run() and collect results in one breath. The
// live service (src/service/) and the replay driver for journals carrying
// external commands need the same stack held OPEN: schedule the trace,
// then advance the sim clock in steps and interleave external traffic
// commands at the current cursor. LiveSession is that shape — it mirrors
// Experiment::run_with_sink's construction order EXACTLY (run_with_sink
// itself delegates here, so the two cannot drift) and exposes:
//
//   start()        — observers + Coordinator::setup(), no engine run
//   advance_to(t)  — run the engine to sim time t; cursor := t
//   apply(cmd)     — apply a TrafficCommand at the cursor
//   finish()       — advance to the horizon, close the sink, collect
//
// Determinism contract: the final state (and every journaled event) is a
// pure function of the accepted (cursor, command) sequence. The engine's
// clock trails the cursor (run_until stops at the last executed event), so
// commands are scheduled at the cursor through the event queue — their
// cascades interleave with pending trace events in seq order, identically
// on the live and the replay side.
//
// TrafficCommand is the canonical form of one external event. Its text
// line (canonical()) is what the daemon journals in kExternal records and
// what the wire codec parses — parse(canonical(cmd)) == cmd, which the
// codec property tests pin.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "api/builder.h"
#include "core/coordinator.h"
#include "core/observer.h"
#include "core/resource_manager.h"
#include "sim/engine.h"
#include "trace/job_trace.h"

namespace venn::api {

// One external traffic command, in canonical form. Doubles round-trip
// through the text form as shortest-exact decimal (%.17g), so canonical()
// is a byte-stable key for the journal.
struct TrafficCommand {
  enum class Kind {
    kAdvance,      // advance <t>          — run the sim clock to t
    kCheckin,      // checkin <dev> <dur>  — grant an external session
    kCheckout,     // checkout <dev>       — end session / retire from pool
    kSubmit,       // submit <rounds> <demand> <cat> <task_s> <cv> <dl_s>
    kAdmit,        // admit                — one open-loop mix admission
    kRespond,      // respond <dev>        — deliver in-flight result early
    kSnapshotNow,  // snapshot-now         — capture + persist a snapshot
  };

  Kind kind = Kind::kAdvance;
  std::size_t dev = 0;       // checkin / checkout / respond
  double duration = 0.0;     // checkin session length (s)
  double target = 0.0;       // advance target (absolute sim seconds)
  trace::JobSpec spec{};     // submit

  [[nodiscard]] std::string canonical() const;

  // Parses a canonical (or hand-typed) command line. Throws
  // std::invalid_argument naming the offending token on anything
  // malformed; unknown verbs are NOT traffic commands (the service codec
  // routes those to the admin surface or rejects them).
  [[nodiscard]] static TrafficCommand parse(const std::string& line);

  // True if `verb` (the first token of a line) names a traffic command.
  [[nodiscard]] static bool is_traffic_verb(const std::string& verb);
};

class LiveSession {
 public:
  // Mirrors run_with_sink: engine seeded from the experiment's "engine"
  // stream, shards configured before the coordinator exists, matrix +
  // user observers installed in order. `sink` may be null (dry runs).
  // The experiment, observers and sink must outlive the session.
  LiveSession(const Experiment& ex, std::unique_ptr<Scheduler> scheduler,
              std::string label, journal::JournalSink* sink);
  ~LiveSession();

  LiveSession(const LiveSession&) = delete;
  LiveSession& operator=(const LiveSession&) = delete;

  // Schedules the whole trace (Coordinator::setup). Call exactly once.
  void start();

  // Runs the engine to min(t, horizon) and moves the cursor there. The
  // cursor never moves backward.
  void advance_to(SimTime t);

  // Validates a command against static experiment facts (device range,
  // open-loop availability, monotone advance). Returns an error message,
  // or nullopt when the command is applicable. The daemon rejects invalid
  // commands BEFORE journaling them; replay therefore never sees one.
  [[nodiscard]] std::optional<std::string> validate(
      const TrafficCommand& cmd) const;

  // Applies a command at the cursor. Returns true if it took effect,
  // false for a deterministic no-op (e.g. checkin of an online device) —
  // identical on the live and replay side. Commands run through the event
  // queue at the cursor time.
  bool apply(const TrafficCommand& cmd);

  // Advances to the horizon, closes the sink (on_run_end) and collects
  // results. Call at most once; the session is read-only afterwards.
  [[nodiscard]] RunResult finish();

  [[nodiscard]] SimTime cursor() const { return cursor_; }
  [[nodiscard]] SimTime horizon() const { return horizon_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] Coordinator& coordinator() { return *coord_; }
  [[nodiscard]] const Coordinator& coordinator() const { return *coord_; }

 private:
  std::string label_;
  journal::JournalSink* sink_;
  SimTime horizon_;
  SimTime cursor_ = 0.0;
  bool open_loop_;
  std::size_t num_devices_;
  bool finished_ = false;

  sim::Engine engine_;
  ResourceManager manager_;
  AssignmentMatrixObserver matrix_;
  std::unique_ptr<Coordinator> coord_;
};

}  // namespace venn::api
