// ScenarioSpec / PolicySpec: the declarative experiment description.
//
// A *scenario* is everything that defines the world a policy is dropped
// into — device population, workload, bias, horizon, seed. A *policy spec*
// names a registered policy plus its knobs. Keeping the two separate is
// what makes sweeps well-formed: a (scenario × policy × seed) grid replays
// the identical trace for every policy (the paper's paired-comparison
// methodology, §5.1).
//
// Both specs parse `key=value` overrides, so the CLI, benches and config
// files share one construction path:
//
//   ScenarioSpec sc;
//   sc.set("jobs", "50");          // known keys are typed + validated
//   PolicySpec pol;
//   pol.set("policy", "venn");
//   pol.set("epsilon", "2");       // Venn knob
//   pol.set("param.threshold", "20");  // free-form, for external policies
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/registry.h"
#include "topology/topology.h"
#include "trace/availability.h"
#include "trace/hardware.h"
#include "trace/job_trace.h"
#include "util/ids.h"
#include "workload/workload.h"

namespace venn::api {

struct ScenarioSpec {
  std::string name = "default";  // label for sweep reports
  std::uint64_t seed = 42;

  // Population. Calibrated so that the default 50-job workloads run at the
  // paper's contention level (per-round scheduling delays of minutes to a
  // few hours, Fig. 5).
  std::size_t num_devices = 7000;
  trace::AvailabilityConfig availability;
  trace::HardwareConfig hardware;

  // Workload.
  std::size_t num_jobs = 50;
  trace::Workload workload = trace::Workload::kEven;
  std::optional<trace::BiasedWorkload> bias;
  trace::JobTraceConfig job_trace;

  // Pluggable generators (src/workload/). An unconfigured family (empty
  // name) keeps the legacy single-model path for that axis, so existing
  // scenarios reproduce byte-identically. Names are validated against the
  // family registry when set.
  workload::GeneratorSpec arrival_gen;  // arrival=..., arrival.<key>=...
  workload::GeneratorSpec mix_gen;      // mix=...,     mix.<key>=...
  workload::GeneratorSpec churn_gen;    // churn=...,   churn.<key>=...

  // Round protocol (src/protocol/): sync | overcommit | async plus dotted
  // knobs (protocol.overcommit=1.3, protocol.buffer=64, ...). Unconfigured
  // (empty name) keeps the paper's synchronous protocol byte-identically.
  // Unlike the generator families, re-setting `protocol=` to a *different*
  // name throws: a scenario assembled from several override sources must
  // not silently run whichever protocol was named last.
  workload::GeneratorSpec protocol_gen;  // protocol=..., protocol.<key>=...

  // open-loop=1: jobs are admitted mid-run from the arrival stream
  // (requires arrival= and mix=); `jobs` caps admissions, 0 = unbounded.
  bool open_loop = false;
  // stream=1: device sessions are pulled lazily from the churn model
  // (requires churn=) — O(devices) memory instead of O(devices × horizon).
  bool streaming = false;
  // index=0 disables the incremental eligibility index and falls back to
  // the full-fleet-scan scheduling hot path. Both modes simulate
  // byte-identically with *each other*; the knob exists for A/B perf
  // measurement (bench/hotpath_index) and as an escape hatch. Note that
  // index=0 preserves the pre-index scan *algorithms* (their cost profile),
  // not bit-exact pre-index trajectories: idle-sweep randomness is drawn
  // from a per-sweep stream derived from the scenario seed in both modes,
  // no longer from the engine RNG.
  bool use_index = true;

  // Simulation.
  SimTime horizon = 28.0 * kDay;

  // shards=N: sharded fleet execution (1-64). The fleet is partitioned
  // into N contiguous device shards and the fleet-proportional passes
  // (idle-pool sweep filtering, eligibility-index rebuckets, index=0
  // supply scans) run on a bounded worker pool with shard-ordered merges.
  // Purely an execution knob: results are byte-identical for any value,
  // and the default 1 runs the serial path with no pool at all.
  std::size_t shards = 1;

  // Coordination topology (src/topology/). topology=flat (the default,
  // spelled "" here) is the paper's single coordinator loop; topology=hier
  // models regional edge coordinators, each owning a contiguous
  // FleetPartition device range with its own diurnal phase, feeding the
  // global coordinator with a configurable region→global sync latency.
  // Like `protocol=`, re-setting `topology=` to a *different* value
  // throws. The dotted `topo.*` knobs require topology=hier (orphans throw
  // at build): topo.regions (regional coordinators, [2, 64], default 4),
  // topo.sync_latency (uplink latency in seconds ≥ 0, default 0 — which is
  // byte-identical to flat), topo.phase_spread (diurnal peak spread across
  // regions in hours ≥ 0, default 0).
  std::string topology;                     // "", "flat" or "hier"
  std::optional<std::size_t> topo_regions;  // topo.regions
  std::optional<double> topo_sync_latency;  // topo.sync_latency (s)
  std::optional<double> topo_phase_spread;  // topo.phase_spread (h)

  // Durability (src/journal/). journal=1 mirrors every external event of
  // the run into an append-only journal file (off by default — journaling
  // is purely observational and a journaled run is byte-identical to an
  // unjournaled one). journal.dir= names the directory the journal and its
  // snapshots land in (default "."). snapshot_every=N (alias
  // snapshot-every=N) captures a coordinator state snapshot every N round
  // commits (0 = off). journal.halt-after=N is the crash-injection hook
  // behind the recovery tests: the run halts (SimulationHalted) right
  // after the Nth commit record is flushed, leaving a torn-tail journal
  // plus whatever snapshots were captured (0 = off).
  bool journal_enabled = false;
  std::string journal_dir;
  std::size_t snapshot_every = 0;
  std::size_t journal_halt_after = 0;

  // Applies one `key=value` override. Known keys: name, seed, devices,
  // jobs, workload (even|small|large|low|high), bias
  // (none|general|compute|memory|resource), horizon-days, horizon-s,
  // min-rounds, max-rounds, min-demand, max-demand, interarrival-min,
  // interarrival-s, base-trace, task-s, task-cv, arrival, arrival.<key>,
  // mix, mix.<key>, churn, churn.<key>, protocol (sync|overcommit|async),
  // protocol.<key>, open-loop (0|1), stream (0|1), index (0|1), shards
  // (1-64), topology (flat|hier), topo.regions (2-64), topo.sync_latency,
  // topo.phase_spread, journal (0|1), journal.dir, snapshot_every /
  // snapshot-every, journal.halt-after. Returns false if the key is not a
  // scenario key. Throws std::invalid_argument on a known key with a bad
  // value, on an unknown `topo.*` key, and on a `protocol=` or `topology=`
  // value conflicting with one set earlier.
  bool try_set(const std::string& key, const std::string& value);

  // As try_set, but an unknown key throws std::invalid_argument.
  void set(const std::string& key, const std::string& value);

  // Canonical `key=value\n` serialization: every field that shapes the
  // simulated world, spelled so that parsing the lines back through
  // try_set reconstructs an equivalent spec — including exact doubles
  // (horizon-s / interarrival-s carry raw seconds at %.17g, which strtod
  // round-trips bit-for-bit; the lossy -days / -min spellings remain
  // accepted on input). This is what the journal header stores, so replay
  // can rebuild the experiment from the journal alone. Journal plumbing
  // knobs (journal, journal.dir, journal.halt-after) are deliberately NOT
  // part of the world and are excluded; snapshot_every IS included (the
  // replayed run must capture at the original cadence). Throws
  // std::invalid_argument if `name` contains a newline.
  [[nodiscard]] std::string to_kv() const;

  // True when any workload generator family is configured (the scenario
  // leaves the legacy single-model world).
  [[nodiscard]] bool uses_generators() const {
    return arrival_gen.configured() || mix_gen.configured() ||
           churn_gen.configured();
  }

  // Resolved topology configuration (defaults applied). hier iff
  // topology == "hier"; flat specs get an all-default (inactive) spec.
  [[nodiscard]] topology::TopologySpec topology_spec() const;
};

struct PolicySpec {
  std::string name = "venn";  // a PolicyRegistry key
  PolicyParams params;

  PolicySpec() = default;
  PolicySpec(std::string policy_name)  // NOLINT: implicit by design —
      : name(std::move(policy_name)) {}  // lets {"random", "venn"} spell a grid
  PolicySpec(const char* policy_name) : name(policy_name) {}  // NOLINT
  PolicySpec(std::string policy_name, PolicyParams p)
      : name(std::move(policy_name)), params(std::move(p)) {}

  // Applies one `key=value` override. Known keys: policy, epsilon, tiers,
  // supply-window-h, supply-window-s, tail-pct, ewma-alpha, order-total
  // (0|1), plus `param.<key>` which lands in params.extra for external
  // policies. Returns false if the key is not a policy key; throws on bad
  // values.
  bool try_set(const std::string& key, const std::string& value);
  void set(const std::string& key, const std::string& value);

  // Canonical `key=value\n` serialization (journal header, replay).
  // Doubles at %.17g; supply-window-s carries raw seconds (exact), the
  // lossy supply-window-h spelling remains accepted on input. The
  // scheduling/matching enables are not knobs — the policy *name* implies
  // them through its factory, so name + knobs round-trip the policy.
  [[nodiscard]] std::string to_kv() const;
};

// Workload / bias spellings shared by CLI flags and key=value overrides.
// parse_bias maps "none" to nullopt (no bias); both throw
// std::invalid_argument on unknown spellings.
[[nodiscard]] trace::Workload parse_workload(const std::string& s);
[[nodiscard]] std::optional<trace::BiasedWorkload> parse_bias(
    const std::string& s);

}  // namespace venn::api
