// Rebuilding a runnable Experiment from a journal header.
//
// A journal header carries the canonical scenario/policy key=value blocks,
// the seed and the generated-inputs digest — everything needed to
// reconstruct the world the journaled run executed in. Three consumers
// share this path: Experiment::replay (re-execute + verify), the service
// daemon's --resume (restore, then go live) and the time-travel inspector
// (replay to commit N, then dump). Factoring it here keeps all three
// reading the header the same way, so a header a replay accepts is a
// header the daemon can resume from.
#pragma once

#include <memory>

#include "api/builder.h"
#include "journal/format.h"

namespace venn::api {

// The world a journal header describes, rebuilt and digest-checked.
struct RebuiltRun {
  ScenarioSpec scenario;
  PolicySpec policy;
  Experiment experiment;
};

// Parses the header's kv blocks through the normal override surface (so an
// unknown knob is a loud error), regenerates the inputs and checks them
// against the header's digest. Throws std::runtime_error on malformed kv,
// a seed disagreement or a digest mismatch. Journal plumbing knobs
// (journal_enabled/dir/halt_after) are cleared on the rebuilt scenario —
// the caller decides whether the rebuilt run records, verifies or both.
// `observers` are subscribed to the rebuilt experiment's runs (the daemon
// attaches its TimeSeriesRecorder through this; callers keep ownership).
[[nodiscard]] RebuiltRun rebuild_from_header(
    const journal::JournalHeader& header,
    std::vector<RunObserver*> observers = {});

// The header-recorded policy, instantiated against the rebuilt
// experiment's scheduler seed stream.
[[nodiscard]] std::unique_ptr<Scheduler> rebuilt_scheduler(
    const RebuiltRun& run);

}  // namespace venn::api
