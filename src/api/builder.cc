#include "api/builder.h"

#include "api/live.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "journal/writer.h"
#include "sim/engine.h"
#include "topology/topology.h"
#include "util/logging.h"

namespace venn::api {

namespace {

// ScenarioSpec carries the same world-description fields as the legacy
// ExperimentConfig; input generation reuses the core builder so traces stay
// byte-identical across the old and new entry points.
ExperimentConfig to_config(const ScenarioSpec& s) {
  ExperimentConfig cfg;
  cfg.seed = s.seed;
  cfg.num_devices = s.num_devices;
  cfg.availability = s.availability;
  cfg.hardware = s.hardware;
  cfg.num_jobs = s.num_jobs;
  cfg.workload = s.workload;
  cfg.bias = s.bias;
  cfg.job_trace = s.job_trace;
  cfg.horizon = s.horizon;
  return cfg;
}

// The open-loop / streaming flags only make sense with the matching
// generator families configured; catch the mismatch before a run.
void validate_modes(const ScenarioSpec& s) {
  // Dotted knobs without a family name would otherwise be dropped silently
  // (`--churn.up-scale-h=4` with `--churn=weibull` forgotten).
  const std::pair<const workload::GeneratorSpec*, const char*> families[] = {
      {&s.arrival_gen, "arrival"},
      {&s.mix_gen, "mix"},
      {&s.churn_gen, "churn"},
      {&s.protocol_gen, "protocol"}};
  for (const auto& [spec, prefix] : families) {
    if (!spec->configured() && !spec->params.kv.empty()) {
      throw std::invalid_argument(
          std::string(prefix) + "." + spec->params.kv.begin()->first +
          " is set but no " + prefix + "=<name> is configured");
    }
  }
  if (s.open_loop &&
      (!s.arrival_gen.configured() || !s.mix_gen.configured())) {
    throw std::invalid_argument(
        "open-loop=1 requires arrival=<name> and mix=<name>");
  }
  if (s.open_loop && s.bias) {
    // apply_bias is a batch reassignment over the full job list; per-job
    // admission cannot honor it. The `biased` mix is the per-job spelling.
    throw std::invalid_argument(
        "open-loop=1 cannot apply a scenario bias; use mix=biased "
        "(mix.category=..., mix.frac=...) instead");
  }
  if (s.open_loop && s.num_jobs == 0 && s.arrival_gen.name == "static" &&
      s.arrival_gen.params.real("spacing-min", 0.0) <= 0.0) {
    // An unspaced batch never advances time; unbounded admission would
    // admit at one timestamp forever (the coordinator's livelock guard
    // would eventually fire, but fail eagerly with a usable message).
    throw std::invalid_argument(
        "open-loop=1 with unspaced arrival=static requires a jobs=N cap "
        "(or arrival.spacing-min>0)");
  }
  if (s.streaming && !s.churn_gen.configured()) {
    throw std::invalid_argument("stream=1 requires churn=<name>");
  }
  // Same rule for the topology knobs: a `topo.*` override with
  // topology=hier forgotten would otherwise silently model a flat run.
  if (s.topology != "hier") {
    if (s.topo_regions) {
      throw std::invalid_argument(
          "topo.regions is set but topology=hier is not");
    }
    if (s.topo_sync_latency) {
      throw std::invalid_argument(
          "topo.sync_latency is set but topology=hier is not");
    }
    if (s.topo_phase_spread) {
      throw std::invalid_argument(
          "topo.phase_spread is set but topology=hier is not");
    }
  }
  // Mirror the dotted-knob-without-family rule for the journal knobs: a
  // configured journal.dir / journal.halt-after with journaling off would
  // otherwise be dropped silently.
  if (!s.journal_enabled) {
    if (!s.journal_dir.empty()) {
      throw std::invalid_argument("journal.dir is set but journal=1 is not");
    }
    if (s.journal_halt_after != 0) {
      throw std::invalid_argument(
          "journal.halt-after is set but journal=1 is not");
    }
  }
}

// Injects `key=value` into the spec unless the user set it explicitly, and
// only when the generator accepts the key.
template <typename Iface>
void default_key(const workload::GeneratorRegistry<Iface>& reg,
                 workload::GeneratorSpec& spec, const std::string& key,
                 const std::string& value) {
  const auto& accepted = reg.keys(spec.name);
  if (std::find(accepted.begin(), accepted.end(), key) == accepted.end()) {
    return;
  }
  spec.params.kv.emplace(key, value);
}

// Scenario-level workload keys (workload, min/max-rounds, min/max-demand,
// task-s, interarrival-min, ...) flow into the configured generators as
// parameter defaults — explicit arrival.*/mix.* knobs win — so
// `--max-demand=12 --mix=heavy-tail` means what it says instead of the
// scenario key being silently ignored on the generator path.
workload::GeneratorSet build_scenario_generators(const ScenarioSpec& s) {
  workload::GeneratorSpec arrival = s.arrival_gen;
  workload::GeneratorSpec mix = s.mix_gen;
  if (arrival.configured()) {
    default_key(workload::arrival_registry(), arrival, "interarrival-min",
                std::to_string(s.job_trace.mean_interarrival / kMinute));
  }
  if (mix.configured()) {
    const auto& reg = workload::mix_registry();
    const trace::JobTraceConfig& jt = s.job_trace;
    default_key(reg, mix, "workload", trace::workload_cli_name(s.workload));
    default_key(reg, mix, "base-trace", std::to_string(jt.base_trace_size));
    default_key(reg, mix, "min-rounds", std::to_string(jt.min_rounds));
    default_key(reg, mix, "max-rounds", std::to_string(jt.max_rounds));
    default_key(reg, mix, "min-demand", std::to_string(jt.min_demand));
    default_key(reg, mix, "max-demand", std::to_string(jt.max_demand));
    default_key(reg, mix, "task-s", std::to_string(jt.nominal_task_s));
    default_key(reg, mix, "task-cv", std::to_string(jt.task_cv));
  }
  return workload::build_generators(arrival, mix, s.churn_gen, s.seed);
}

// Hierarchical topology: shift each device's availability sessions by its
// region's diurnal phase offset (timezone spread across a geo-distributed
// fleet). Sessions pushed wholly past the horizon are dropped. Skipped
// entirely at phase_spread=0 — the zero-offset case must leave the world
// bit-for-bit untouched (the flat-equivalence contract), and streaming
// devices carry no materialized sessions (the coordinator applies the
// offset as it pulls from the churn stream instead).
void apply_region_phases(std::vector<Device>& devices,
                         const topology::TopologySpec& topo, SimTime horizon) {
  if (!topo.hier || topo.phase_spread_h == 0.0) return;
  const topology::RegionMap map(devices.size(), topo.regions);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (!devices[i].has_sessions()) continue;
    const double off = topology::phase_offset(topo, map.region_of(i));
    if (off == 0.0) continue;
    std::vector<Session> shifted;
    shifted.reserve(devices[i].sessions().size());
    for (Session session : devices[i].sessions()) {
      session.start += off;
      session.end += off;
      if (session.start >= horizon) break;  // sessions are ordered
      shifted.push_back(session);
    }
    devices[i] =
        Device(devices[i].id(), devices[i].spec(), std::move(shifted));
  }
}

}  // namespace

ExperimentInputs build_inputs(const ScenarioSpec& s) {
  return build_inputs(s, build_scenario_generators(s));
}

std::uint64_t inputs_digest(const ExperimentInputs& in) {
  std::uint64_t h = journal::kFnvOffset;
  const auto mix_u64 = [&h](std::uint64_t v) {
    h = journal::fnv1a64(h, &v, sizeof v);
  };
  const auto mix_f64 = [&mix_u64](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);  // raw IEEE-754 — exact
    mix_u64(bits);
  };
  mix_u64(static_cast<std::uint64_t>(in.devices.size()));
  for (const Device& d : in.devices) {
    mix_u64(static_cast<std::uint64_t>(d.id().value()));
    mix_f64(d.spec().cpu_score);
    mix_f64(d.spec().mem_score);
    mix_u64(static_cast<std::uint64_t>(d.sessions().size()));
    for (const Session& s : d.sessions()) {
      mix_f64(s.start);
      mix_f64(s.end);
    }
  }
  mix_u64(static_cast<std::uint64_t>(in.jobs.size()));
  for (const trace::JobSpec& j : in.jobs) {
    mix_u64(static_cast<std::uint64_t>(j.rounds));
    mix_u64(static_cast<std::uint64_t>(j.demand));
    mix_u64(static_cast<std::uint64_t>(j.category));
    mix_f64(j.arrival);
    mix_f64(j.nominal_task_s);
    mix_f64(j.task_cv);
    mix_f64(j.deadline_s);
  }
  return h;
}

std::string journal_file_path(const ScenarioSpec& scenario,
                              const std::string& label) {
  const std::string dir =
      scenario.journal_dir.empty() ? "." : scenario.journal_dir;
  return dir + "/" + scenario.name + "-" + label + ".vjl";
}

ExperimentInputs build_inputs(const ScenarioSpec& s,
                              const workload::GeneratorSet& gens) {
  validate_modes(s);
  if (!s.uses_generators()) {
    // Legacy single-model path, byte-identical to pre-generator scenarios.
    ExperimentInputs in = venn::build_inputs(to_config(s));
    apply_region_phases(in.devices, s.topology_spec(), s.horizon);
    return in;
  }

  ExperimentInputs in;
  Rng root(s.seed);
  Rng dev_rng = root.fork();
  Rng job_rng = root.fork();

  // Devices: hardware specs from the mixture; sessions from the churn
  // model (materialized here, or streamed at run time), else the legacy
  // diurnal generator. Per-device stream identity comes from
  // workload::device_stream_ctx — the same derivation the streaming
  // coordinator uses — so stream=0 and stream=1 see the same world.
  trace::AvailabilityConfig avail = s.availability;
  avail.horizon = s.horizon;
  in.devices.reserve(s.num_devices);
  for (std::size_t i = 0; i < s.num_devices; ++i) {
    const DeviceSpec spec = trace::sample_spec(s.hardware, dev_rng);
    if (gens.churn != nullptr && s.streaming) {
      in.devices.emplace_back(DeviceId(static_cast<std::int64_t>(i)), spec);
      continue;
    }
    std::vector<Session> sessions =
        gens.churn != nullptr
            ? workload::materialize_sessions(
                  *gens.churn,
                  workload::device_stream_ctx(s.seed, i, s.horizon))
            : trace::generate_sessions(avail, dev_rng);
    in.devices.emplace_back(DeviceId(static_cast<std::int64_t>(i)), spec,
                            std::move(sessions));
  }
  apply_region_phases(in.devices, s.topology_spec(), s.horizon);

  // Jobs: open-loop scenarios admit them at run time.
  if (s.open_loop) return in;

  if (gens.mix != nullptr) {
    Rng mix_rng(Rng::derive(s.seed, "mix"));
    in.jobs.reserve(s.num_jobs);
    for (std::size_t i = 0; i < s.num_jobs; ++i) {
      in.jobs.push_back(gens.mix->sample(mix_rng));
    }
    // The §5.4 bias applies to generator-sampled jobs too.
    if (s.bias) {
      Rng bias_rng(Rng::derive(s.seed, "bias"));
      trace::apply_bias(in.jobs, *s.bias, bias_rng);
    }
  } else {
    const auto base = trace::generate_base_trace(s.job_trace, job_rng);
    in.jobs = trace::sample_workload(base, s.workload, s.num_jobs,
                                     s.job_trace, job_rng);
    if (s.bias) trace::apply_bias(in.jobs, *s.bias, job_rng);
  }

  if (gens.arrival != nullptr) {
    const auto arrivals = workload::materialize_arrivals(
        *gens.arrival, in.jobs.size(), s.horizon,
        Rng(Rng::derive(s.seed, "arrival")));
    if (arrivals.size() < in.jobs.size()) {
      VENN_WARN << "scenario \"" << s.name << "\": arrival process \""
                << s.arrival_gen.name << "\" yielded only " << arrivals.size()
                << " of " << in.jobs.size()
                << " requested jobs before the horizon; truncating";
      in.jobs.resize(arrivals.size());
    }
    for (std::size_t i = 0; i < in.jobs.size(); ++i) {
      in.jobs[i].arrival = arrivals[i];
    }
  } else if (gens.mix != nullptr) {
    // Mix without an arrival process: default Poisson submission times.
    Rng arr_rng(Rng::derive(s.seed, "arrival"));
    SimTime t = 0.0;
    for (auto& j : in.jobs) {
      t += arr_rng.exponential(1.0 / s.job_trace.mean_interarrival);
      j.arrival = t;
    }
  }
  return in;
}

Experiment::Experiment(ScenarioSpec scenario, ExperimentInputs inputs,
                       std::vector<RunObserver*> observers)
    : Experiment(std::move(scenario), std::move(inputs), nullptr,
                 std::move(observers)) {}

Experiment::Experiment(
    ScenarioSpec scenario, ExperimentInputs inputs,
    std::shared_ptr<const workload::GeneratorSet> generators,
    std::vector<RunObserver*> observers)
    : scenario_(std::move(scenario)),
      inputs_(std::move(inputs)),
      generators_(std::move(generators)),
      observers_(std::move(observers)) {
  validate_modes(scenario_);
  if (!generators_) {
    generators_ = std::make_shared<const workload::GeneratorSet>(
        build_scenario_generators(scenario_));
  }
  // Instantiating here (not per run) makes protocol knob validation an
  // Experiment-construction error, like generator knob validation.
  protocol_ = protocol::build_protocol(scenario_.protocol_gen,
                                       stream_seed("protocol"));
}

std::uint64_t Experiment::stream_seed(std::string_view tag) const {
  return Rng::derive(scenario_.seed, tag);
}

RunResult Experiment::run(const PolicySpec& policy) const {
  auto scheduler = PolicyRegistry::instance().create(policy.name, policy.params,
                                                     stream_seed("scheduler"));
  if (!scenario_.journal_enabled) {
    return run_with_sink(std::move(scheduler), {}, nullptr);
  }
  const std::string label = scheduler->name();
  journal::JournalHeader header;
  header.seed = scenario_.seed;
  header.scenario_kv = scenario_.to_kv();
  header.policy_kv = policy.to_kv();
  header.label = label;
  header.inputs_digest = inputs_digest(inputs_);
  if (!scenario_.journal_dir.empty()) {
    std::filesystem::create_directories(scenario_.journal_dir);
  }
  journal::JournalWriter writer(journal_file_path(scenario_, label), header);
  if (scenario_.journal_halt_after != 0) {
    writer.set_halt_after_commits(scenario_.journal_halt_after);
  }
  return run_with_sink(std::move(scheduler), label, &writer);
}

RunResult Experiment::run_with(std::unique_ptr<Scheduler> scheduler,
                               std::string label) const {
  if (scenario_.journal_enabled) {
    // The journal header records the policy's canonical key=value form so
    // replay can re-instantiate it; an externally constructed scheduler
    // has none. Journaled runs must name a registered policy.
    throw std::invalid_argument(
        "journal=1 requires a registered policy (Experiment::run); "
        "run_with cannot journal an externally constructed scheduler");
  }
  return run_with_sink(std::move(scheduler), std::move(label), nullptr);
}

RunResult Experiment::run_with_sink(std::unique_ptr<Scheduler> scheduler,
                                    std::string label,
                                    journal::JournalSink* sink) const {
  if (!scheduler) {
    throw std::invalid_argument("run_with: scheduler must not be null");
  }
  // A batch run is a live session advanced to the horizon in one breath:
  // start() schedules the trace, finish() runs it and collects. The live
  // daemon and the replay driver pace the same stack step by step, so the
  // recorded and the re-executed run share one construction path.
  LiveSession session(*this, std::move(scheduler), std::move(label), sink);
  session.start();
  return session.finish();
}

ExperimentBuilder& ExperimentBuilder::scenario(ScenarioSpec s) {
  scenario_ = std::move(s);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::policy(PolicySpec p) {
  policy_ = std::move(p);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::name(std::string v) {
  scenario_.name = std::move(v);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t v) {
  scenario_.seed = v;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::devices(std::size_t n) {
  scenario_.num_devices = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::jobs(std::size_t n) {
  scenario_.num_jobs = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::workload(trace::Workload w) {
  scenario_.workload = w;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::bias(trace::BiasedWorkload b) {
  scenario_.bias = b;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::horizon(SimTime t) {
  scenario_.horizon = t;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::rounds(int min, int max) {
  scenario_.job_trace.min_rounds = min;
  scenario_.job_trace.max_rounds = max;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::demand(int min, int max) {
  scenario_.job_trace.min_demand = min;
  scenario_.job_trace.max_demand = max;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::interarrival(SimTime mean) {
  scenario_.job_trace.mean_interarrival = mean;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::set(const std::string& key,
                                          const std::string& value) {
  if (!scenario_.try_set(key, value) && !policy_.try_set(key, value)) {
    throw std::invalid_argument("unknown experiment key \"" + key + "\"");
  }
  return *this;
}

ExperimentBuilder& ExperimentBuilder::override_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("override must be key=value, got \"" + token +
                                "\"");
  }
  return set(token.substr(0, eq), token.substr(eq + 1));
}

ExperimentBuilder& ExperimentBuilder::use_devices(std::vector<Device> devices) {
  devices_override_ = std::move(devices);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::use_jobs(
    std::vector<trace::JobSpec> jobs) {
  jobs_override_ = std::move(jobs);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::observe(RunObserver& obs) {
  observers_.push_back(&obs);
  return *this;
}

Experiment ExperimentBuilder::build() const {
  auto generators = std::make_shared<const workload::GeneratorSet>(
      build_scenario_generators(scenario_));
  ExperimentInputs inputs;
  if (!devices_override_ || !jobs_override_) {
    inputs = build_inputs(scenario_, *generators);
  }
  if (devices_override_) inputs.devices = *devices_override_;
  if (jobs_override_) inputs.jobs = *jobs_override_;
  return Experiment(scenario_, std::move(inputs), std::move(generators),
                    observers_);
}

RunResult ExperimentBuilder::run() const { return build().run(policy_); }

}  // namespace venn::api
