#include "api/builder.h"

#include <stdexcept>
#include <utility>

#include "sim/engine.h"

namespace venn::api {

namespace {

// ScenarioSpec carries the same world-description fields as the legacy
// ExperimentConfig; input generation reuses the core builder so traces stay
// byte-identical across the old and new entry points.
ExperimentConfig to_config(const ScenarioSpec& s) {
  ExperimentConfig cfg;
  cfg.seed = s.seed;
  cfg.num_devices = s.num_devices;
  cfg.availability = s.availability;
  cfg.hardware = s.hardware;
  cfg.num_jobs = s.num_jobs;
  cfg.workload = s.workload;
  cfg.bias = s.bias;
  cfg.job_trace = s.job_trace;
  cfg.horizon = s.horizon;
  return cfg;
}

}  // namespace

ExperimentInputs build_inputs(const ScenarioSpec& scenario) {
  return venn::build_inputs(to_config(scenario));
}

Experiment::Experiment(ScenarioSpec scenario, ExperimentInputs inputs,
                       std::vector<RunObserver*> observers)
    : scenario_(std::move(scenario)),
      inputs_(std::move(inputs)),
      observers_(std::move(observers)) {}

std::uint64_t Experiment::stream_seed(std::string_view tag) const {
  return Rng::derive(scenario_.seed, tag);
}

RunResult Experiment::run(const PolicySpec& policy) const {
  return run_with(PolicyRegistry::instance().create(
      policy.name, policy.params, stream_seed("scheduler")));
}

RunResult Experiment::run_with(std::unique_ptr<Scheduler> scheduler,
                               std::string label) const {
  if (!scheduler) {
    throw std::invalid_argument("run_with: scheduler must not be null");
  }
  if (label.empty()) label = scheduler->name();

  sim::Engine engine(stream_seed("engine"));
  ResourceManager manager(std::move(scheduler));
  AssignmentMatrixObserver matrix;
  manager.add_observer(&matrix);
  for (RunObserver* obs : observers_) {
    obs->on_run_start();
    manager.add_observer(obs);
  }

  CoordinatorConfig ccfg;
  ccfg.horizon = scenario_.horizon;
  Coordinator coord(engine, manager, inputs_.devices, inputs_.jobs, ccfg);
  coord.run();

  RunResult result = collect_results(coord, label);
  result.assignment_matrix = matrix.matrix();
  return result;
}

ExperimentBuilder& ExperimentBuilder::scenario(ScenarioSpec s) {
  scenario_ = std::move(s);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::policy(PolicySpec p) {
  policy_ = std::move(p);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::name(std::string v) {
  scenario_.name = std::move(v);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t v) {
  scenario_.seed = v;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::devices(std::size_t n) {
  scenario_.num_devices = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::jobs(std::size_t n) {
  scenario_.num_jobs = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::workload(trace::Workload w) {
  scenario_.workload = w;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::bias(trace::BiasedWorkload b) {
  scenario_.bias = b;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::horizon(SimTime t) {
  scenario_.horizon = t;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::rounds(int min, int max) {
  scenario_.job_trace.min_rounds = min;
  scenario_.job_trace.max_rounds = max;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::demand(int min, int max) {
  scenario_.job_trace.min_demand = min;
  scenario_.job_trace.max_demand = max;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::interarrival(SimTime mean) {
  scenario_.job_trace.mean_interarrival = mean;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::set(const std::string& key,
                                          const std::string& value) {
  if (!scenario_.try_set(key, value) && !policy_.try_set(key, value)) {
    throw std::invalid_argument("unknown experiment key \"" + key + "\"");
  }
  return *this;
}

ExperimentBuilder& ExperimentBuilder::override_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("override must be key=value, got \"" + token +
                                "\"");
  }
  return set(token.substr(0, eq), token.substr(eq + 1));
}

ExperimentBuilder& ExperimentBuilder::use_devices(std::vector<Device> devices) {
  devices_override_ = std::move(devices);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::use_jobs(
    std::vector<trace::JobSpec> jobs) {
  jobs_override_ = std::move(jobs);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::observe(RunObserver& obs) {
  observers_.push_back(&obs);
  return *this;
}

Experiment ExperimentBuilder::build() const {
  ExperimentInputs inputs;
  if (!devices_override_ || !jobs_override_) {
    inputs = build_inputs(scenario_);
  }
  if (devices_override_) inputs.devices = *devices_override_;
  if (jobs_override_) inputs.jobs = *jobs_override_;
  return Experiment(scenario_, std::move(inputs), observers_);
}

RunResult ExperimentBuilder::run() const { return build().run(policy_); }

}  // namespace venn::api
