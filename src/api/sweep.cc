#include "api/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace venn::api {

SweepRunner::SweepRunner(std::size_t num_threads) : num_threads_(num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::size_t SweepRunner::cell_index(const SweepSpec& spec,
                                    std::size_t scenario_idx,
                                    std::size_t policy_idx,
                                    std::size_t seed_idx) {
  const std::size_t num_seeds = spec.seeds.empty() ? 1 : spec.seeds.size();
  return (scenario_idx * spec.policies.size() + policy_idx) * num_seeds +
         seed_idx;
}

std::vector<SweepCell> SweepRunner::run(const SweepSpec& spec) const {
  if (spec.scenarios.empty() || spec.policies.empty()) {
    throw std::invalid_argument("sweep needs >= 1 scenario and >= 1 policy");
  }
  const std::size_t num_seeds = spec.seeds.empty() ? 1 : spec.seeds.size();
  std::vector<SweepCell> cells(spec.num_cells());
  for (std::size_t si = 0; si < spec.scenarios.size(); ++si) {
    for (std::size_t pi = 0; pi < spec.policies.size(); ++pi) {
      for (std::size_t ki = 0; ki < num_seeds; ++ki) {
        SweepCell& cell = cells[cell_index(spec, si, pi, ki)];
        cell.scenario_index = si;
        cell.policy_index = pi;
        cell.seed_index = ki;
        cell.seed =
            spec.seeds.empty() ? spec.scenarios[si].seed : spec.seeds[ki];
      }
    }
  }

  // Each cell is self-contained (its own inputs, engine and scheduler), so
  // work-stealing over an atomic cursor cannot perturb results — only the
  // wall-clock. Inputs for the same (scenario, seed) are regenerated per
  // cell rather than shared across threads; generation is deterministic, so
  // policies still see identical traces.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      SweepCell& cell = cells[i];
      try {
        ScenarioSpec scenario = spec.scenarios[cell.scenario_index];
        scenario.seed = cell.seed;
        // build() instantiates the workload generator set once and shares
        // it between input generation and the run (base traces / replay
        // files are not rebuilt).
        const Experiment ex = ExperimentBuilder().scenario(scenario).build();
        cell.result = ex.run(spec.policies[cell.policy_index]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  const std::size_t pool = std::min(num_threads_, cells.size());
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return cells;
}

}  // namespace venn::api
